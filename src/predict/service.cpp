#include "predict/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/expect.hpp"
#include "predict/nelder_mead.hpp"

namespace mlfs {

void PredictConfig::validate() const {
  if (warm_step_scale <= 0.0) {
    throw ContractViolation("PredictConfig: warm_step_scale must be > 0");
  }
  if (warm_step_floor <= 0.0 || warm_step_floor > 0.25) {
    throw ContractViolation("PredictConfig: warm_step_floor must be in (0, 0.25]");
  }
  if (restart_budget < 0) {
    throw ContractViolation("PredictConfig: restart_budget must be >= 0");
  }
  if (regression_factor < 1.0) {
    throw ContractViolation("PredictConfig: regression_factor must be >= 1");
  }
  if (regression_epsilon < 0.0) {
    throw ContractViolation("PredictConfig: regression_epsilon must be >= 0");
  }
  if (settle_factor < 1.0) {
    throw ContractViolation("PredictConfig: settle_factor must be >= 1");
  }
  if (settle_epsilon < 0.0) {
    throw ContractViolation("PredictConfig: settle_epsilon must be >= 0");
  }
  if (freeze_weight_threshold < 0.0 || freeze_weight_threshold >= 1.0) {
    throw ContractViolation("PredictConfig: freeze_weight_threshold must be in [0, 1)");
  }
  if (freeze_streak < 1) {
    throw ContractViolation("PredictConfig: freeze_streak must be >= 1");
  }
  if (freeze_min_links < 1) {
    throw ContractViolation("PredictConfig: freeze_min_links must be >= 1");
  }
  if (coarsen_head < 3) {
    throw ContractViolation("PredictConfig: coarsen_head must be >= 3");
  }
  if (coarsen_per_octave < 1) {
    throw ContractViolation("PredictConfig: coarsen_per_octave must be >= 1");
  }
}

PredictionService::PredictionService(const PredictConfig& config, int check_interval,
                                     const LearningCurveConfig& curve_config)
    : config_(config), check_interval_(check_interval), curve_config_(curve_config) {
  config_.validate();
  MLFS_EXPECT(check_interval_ >= 1);
}

int PredictionService::first_link() const {
  // Smallest multiple of the check interval that passes the engine's
  // OptStop gate (done >= 3) and carries enough points to fit.
  const int least = std::max(3, static_cast<int>(curve_config_.min_observations));
  return ((least + check_interval_ - 1) / check_interval_) * check_interval_;
}

int PredictionService::quantize(int done) const {
  const int k = (done / check_interval_) * check_interval_;
  return k >= first_link() ? k : 0;
}

void PredictionService::backfill(JobState& st, const Job& job, int done) const {
  while (static_cast<int>(st.observed.size()) < done) {
    const int next = static_cast<int>(st.observed.size()) + 1;
    st.observed.push_back(job.curve().accuracy_at(next));
  }
}

namespace {

/// Coarsened tail bin of 0-based observation index i (valid for
/// i >= head): log-spaced, ~per_octave bins per doubling.
int coarse_bin(int i, int head, int per_octave) {
  return static_cast<int>(std::floor(
      static_cast<double>(per_octave) *
      std::log2(static_cast<double>(i + 1) / static_cast<double>(head))));
}

/// Logarithmic tail subsample: the first `head` observations exactly, the
/// last observation always, and otherwise the last index of each log bin.
void build_coarse_points(std::span<const double> obs, int head, int per_octave,
                         std::vector<double>& xs, std::vector<double>& ys) {
  const int n = static_cast<int>(obs.size());
  xs.clear();
  ys.clear();
  for (int i = 0; i < n; ++i) {
    const bool keep = i < head || i == n - 1 ||
                      coarse_bin(i, head, per_octave) != coarse_bin(i + 1, head, per_octave);
    if (keep) {
      xs.push_back(static_cast<double>(i + 1));
      ys.push_back(obs[i]);
    }
  }
}

}  // namespace

void PredictionService::fit_link(JobState& st, int done) {
  MLFS_EXPECT(static_cast<int>(st.observed.size()) >= done);
  const std::span<const double> obs(st.observed.data(), static_cast<std::size_t>(done));
  const bool coarse = config_.coarsen && done > config_.coarsen_head;
  std::vector<double> xs, ys;
  if (coarse) {
    build_coarse_points(obs, config_.coarsen_head, config_.coarsen_per_octave, xs, ys);
  }

  const auto& bs = curve_detail::bases();
  LinkRecord rec;
  rec.done = done;
  rec.basis.resize(bs.size());
  const LinkRecord* prev = st.links.empty() ? nullptr : &st.links.back();

  for (std::size_t bi = 0; bi < bs.size(); ++bi) {
    BasisFitRec& out = rec.basis[bi];
    const BasisFitRec* pb = prev ? &prev->basis[bi] : nullptr;
    if (pb != nullptr && pb->frozen) {
      out = *pb;  // frozen: params/rmse carried forward, never refit
      continue;
    }
    const curve_detail::Basis& basis = bs[bi];
    auto objective = [&](const std::vector<double>& p) {
      ++stats_.nm_objective_evals;
      if (!coarse) return curve_detail::fit_residual(basis, p, obs);
      double sq = 0.0;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const double err = basis.eval(p, xs[i]) - ys[i];
        sq += err * err;
      }
      return sq / static_cast<double>(xs.size());
    };

    NelderMeadResult res;
    bool settled = false;
    if (pb == nullptr) {
      res = nelder_mead(objective, basis.init);
      ++stats_.fits_cold;
      out.restarts = 0;
    } else if (pb->restarts >= config_.restart_budget) {
      // Budget spent: this basis regresses chronically under warm starts;
      // one cold fit per link beats warm-then-cold double fits.
      res = nelder_mead(objective, basis.init);
      ++stats_.fits_cold;
      out.restarts = pb->restarts;
    } else {
      // Settled-fit probe: if the previous params still explain the grown
      // prefix, carry them forward for one objective evaluation.
      const double probe = objective(pb->params);
      if (probe <= config_.settle_factor * pb->value + config_.settle_epsilon) {
        out.params = pb->params;
        out.value = probe;
        out.rmse = std::sqrt(std::max(probe, 0.0));
        out.drift = 0.0;
        out.restarts = pb->restarts;
        settled = true;
      } else {
        NelderMeadOptions opts;
        opts.initial_step =
            pb->drift < 0.0
                ? 0.25
                : std::clamp(config_.warm_step_scale * pb->drift, config_.warm_step_floor,
                             0.25);
        res = nelder_mead(objective, pb->params, opts);
        ++stats_.fits_warm;
        out.restarts = pb->restarts;
        if (res.value > config_.regression_factor * pb->value + config_.regression_epsilon) {
          const NelderMeadResult cold = nelder_mead(objective, basis.init);
          ++stats_.fits_cold;
          ++out.restarts;
          if (cold.value < res.value) res = cold;
        }
      }
    }
    if (!settled) {
      out.params = res.x;
      out.value = res.value;
      out.rmse = std::sqrt(std::max(res.value, 0.0));
      if (pb != nullptr) {
        double drift = 0.0;
        for (std::size_t d = 0; d < out.params.size(); ++d) {
          drift = std::max(drift, std::abs(out.params[d] - pb->params[d]));
        }
        out.drift = drift;
      }
    }
    out.low_streak = pb != nullptr ? pb->low_streak : 0;
  }

  // Freeze bookkeeping: recompute the combination weights (same kernel as
  // curve_detail::combine_fits) and advance each unfrozen non-best basis'
  // low-weight streak.
  std::size_t best = 0;
  for (std::size_t bi = 1; bi < rec.basis.size(); ++bi) {
    if (rec.basis[bi].rmse < rec.basis[best].rmse) best = bi;
  }
  const double scale = std::max(2.0 * rec.basis[best].rmse, 1e-3);
  double weight_sum = 0.0;
  std::vector<double> weights(rec.basis.size());
  for (std::size_t bi = 0; bi < rec.basis.size(); ++bi) {
    const double z = rec.basis[bi].rmse / scale;
    weights[bi] = std::exp(-0.5 * z * z) + 1e-12;
    weight_sum += weights[bi];
  }
  const int link_index = static_cast<int>(st.links.size()) + 1;
  for (std::size_t bi = 0; bi < rec.basis.size(); ++bi) {
    BasisFitRec& b = rec.basis[bi];
    if (b.frozen) continue;
    if (bi != best && weights[bi] / weight_sum < config_.freeze_weight_threshold) {
      ++b.low_streak;
    } else {
      b.low_streak = 0;
    }
    if (link_index >= config_.freeze_min_links && b.low_streak >= config_.freeze_streak) {
      b.frozen = true;
    }
  }

  st.links.push_back(std::move(rec));
}

const PredictionService::LinkRecord* PredictionService::advance_links(JobState& st,
                                                                      int link_done) {
  if (!st.links.empty() && st.links.back().done >= link_done) {
    // Rollback re-entry (or an out-of-band query behind the chain tip):
    // the canonical link was already computed — pure-function reuse.
    const auto it = std::lower_bound(
        st.links.begin(), st.links.end(), link_done,
        [](const LinkRecord& r, int d) { return r.done < d; });
    MLFS_EXPECT(it != st.links.end() && it->done == link_done);
    ++stats_.cache_hits;
    return &*it;
  }
  int next = st.links.empty() ? first_link() : st.links.back().done + check_interval_;
  for (; next <= link_done; next += check_interval_) fit_link(st, next);
  return &st.links.back();
}

CurvePrediction PredictionService::prediction_from(const LinkRecord& rec, int target) const {
  const auto& bs = curve_detail::bases();
  std::vector<curve_detail::BasisFit> fits(rec.basis.size());
  for (std::size_t bi = 0; bi < rec.basis.size(); ++bi) {
    fits[bi].rmse = rec.basis[bi].rmse;
    fits[bi].prediction = std::clamp(
        bs[bi].eval(rec.basis[bi].params, static_cast<double>(target)), 0.0, 1.0);
  }
  return curve_detail::combine_fits(fits, curve_config_.residual_scale);
}

CurvePrediction PredictionService::predict_at_max(const Job& job) {
  const int done = job.completed_iterations();
  const int target = job.spec().max_iterations;
  const int link = quantize(done);
  if (link == 0) {
    // Below the first canonical link: mirror predict_at's fallback.
    return {done <= 0 ? 0.0 : job.curve().accuracy_at(done), 0.0};
  }

  if (config_.enabled) {
    JobState& st = states_[job.id()];
    if (st.memo_valid && st.memo_done == link && st.memo_target == target) {
      ++stats_.cache_hits;
      return st.memo;
    }
    const auto t0 = std::chrono::steady_clock::now();
    backfill(st, job, done);
    const LinkRecord* rec = advance_links(st, link);
    const CurvePrediction out = prediction_from(*rec, target);
    st.memo_valid = true;
    st.memo_done = link;
    st.memo_target = target;
    st.memo = out;
    stats_.fit_wall_ms +=
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    return out;
  }

  // Legacy cold-fit path: rebuild the observation vector (the historical
  // O(done) copy) and recompute the whole chain from scratch — identical
  // arithmetic, nothing cached.
  const auto t0 = std::chrono::steady_clock::now();
  JobState scratch;
  backfill(scratch, job, done);
  const LinkRecord* rec = advance_links(scratch, link);
  const CurvePrediction out = prediction_from(*rec, target);
  stats_.fit_wall_ms +=
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

void PredictionService::on_iteration_complete(const Job& job) {
  if (!config_.enabled) return;
  if (job.active_policy() != StopPolicy::OptStop) return;
  backfill(states_[job.id()], job, job.completed_iterations());
}

void PredictionService::on_job_complete(const Job& job) {
  runtime_.record_completion(job);
  states_.erase(job.id());
}

void PredictionService::on_job_failed(const Job& job) { states_.erase(job.id()); }

void PredictionService::save_state(io::BinWriter& w) const {
  w.u64(stats_.fits_cold);
  w.u64(stats_.fits_warm);
  w.u64(stats_.cache_hits);
  w.u64(stats_.nm_objective_evals);
  w.f64(stats_.fit_wall_ms);
  w.u64(states_.size());
  for (const auto& [id, st] : states_) {  // std::map: sorted, canonical bytes
    w.u64(id);
    w.vec_f64(st.observed);
    w.u64(st.links.size());
    for (const LinkRecord& rec : st.links) {
      w.i64(rec.done);
      w.u64(rec.basis.size());
      for (const BasisFitRec& b : rec.basis) {
        w.vec_f64(b.params);
        w.f64(b.rmse);
        w.f64(b.value);
        w.f64(b.drift);
        w.boolean(b.frozen);
        w.i64(b.low_streak);
        w.i64(b.restarts);
      }
    }
    w.boolean(st.memo_valid);
    w.i64(st.memo_done);
    w.i64(st.memo_target);
    w.f64(st.memo.accuracy);
    w.f64(st.memo.confidence);
  }
}

void PredictionService::restore_state(io::BinReader& r) {
  stats_.fits_cold = static_cast<std::size_t>(r.u64());
  stats_.fits_warm = static_cast<std::size_t>(r.u64());
  stats_.cache_hits = static_cast<std::size_t>(r.u64());
  stats_.nm_objective_evals = static_cast<std::size_t>(r.u64());
  stats_.fit_wall_ms = r.f64();
  states_.clear();
  const std::uint64_t jobs = r.u64();
  for (std::uint64_t j = 0; j < jobs; ++j) {
    const JobId id = static_cast<JobId>(r.u64());
    JobState st;
    st.observed = r.vec_f64();
    const std::uint64_t links = r.u64();
    st.links.reserve(static_cast<std::size_t>(links));
    for (std::uint64_t l = 0; l < links; ++l) {
      LinkRecord rec;
      rec.done = static_cast<int>(r.i64());
      const std::uint64_t nb = r.u64();
      rec.basis.resize(static_cast<std::size_t>(nb));
      for (BasisFitRec& b : rec.basis) {
        b.params = r.vec_f64();
        b.rmse = r.f64();
        b.value = r.f64();
        b.drift = r.f64();
        b.frozen = r.boolean();
        b.low_streak = static_cast<int>(r.i64());
        b.restarts = static_cast<int>(r.i64());
      }
      st.links.push_back(std::move(rec));
    }
    st.memo_valid = r.boolean();
    st.memo_done = static_cast<int>(r.i64());
    st.memo_target = static_cast<int>(r.i64());
    st.memo.accuracy = r.f64();
    st.memo.confidence = r.f64();
    states_.emplace(id, std::move(st));
  }
}

}  // namespace mlfs
