// Compact Nelder-Mead simplex minimizer for the low-dimensional curve fits
// in the learning-curve predictor (2-4 parameters, smooth objectives).
// Derivative-free, so basis curves don't need hand-written gradients.
#pragma once

#include <functional>
#include <vector>

namespace mlfs {

struct NelderMeadOptions {
  std::size_t max_iterations = 600;
  double tolerance = 1e-9;      ///< stop when simplex f-spread falls below this
  double initial_step = 0.25;   ///< relative perturbation building the simplex
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t iterations = 0;
};

/// Minimizes f starting from x0. f must be finite at x0; non-finite values
/// elsewhere are treated as +inf (lets objectives reject invalid params).
NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> x0, const NelderMeadOptions& options = {});

}  // namespace mlfs
