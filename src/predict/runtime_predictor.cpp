#include "predict/runtime_predictor.hpp"

#include <algorithm>

#include "common/binio.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace mlfs {

namespace {

/// splitmix64 finalizer — cheap, well-mixed hash for the packed signature.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

SignatureSet::SignatureSet() : slots_(16, kEmpty) {}

std::size_t SignatureSet::probe(std::uint64_t key) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
  while (slots_[i] != kEmpty && slots_[i] != key) i = (i + 1) & mask;
  return i;
}

void SignatureSet::grow() {
  std::vector<std::uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, kEmpty);
  for (const std::uint64_t key : old) {
    if (key != kEmpty) slots_[probe(key)] = key;
  }
}

void SignatureSet::insert(int algorithm, int gpus) {
  const std::uint64_t key = pack(algorithm, gpus);
  MLFS_EXPECT(key != kEmpty);
  const std::size_t i = probe(key);
  if (slots_[i] == key) return;
  slots_[i] = key;
  ++size_;
  if (size_ * 10 >= slots_.size() * 7) grow();
}

bool SignatureSet::contains(int algorithm, int gpus) const {
  return slots_[probe(pack(algorithm, gpus))] != kEmpty;
}

void SignatureSet::clear() {
  slots_.assign(16, kEmpty);
  size_ = 0;
}

std::vector<std::uint64_t> SignatureSet::sorted_keys() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(size_);
  for (const std::uint64_t key : slots_) {
    if (key != kEmpty) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

RuntimePredictor::RuntimePredictor(double seen_rel_error, double unseen_rel_error)
    : seen_rel_error_(seen_rel_error), unseen_rel_error_(unseen_rel_error) {
  MLFS_EXPECT(seen_rel_error_ >= 0.0);
  MLFS_EXPECT(unseen_rel_error_ >= 0.0);
}

double RuntimePredictor::error_factor(const Job& job) const {
  const double rel = has_history(job) ? seen_rel_error_ : unseen_rel_error_;
  // Deterministic per-job perturbation in [1-rel, 1+rel]: re-querying the
  // predictor for the same job yields the same estimate (as a fitted model
  // would), and replays are reproducible.
  Rng rng(job.spec().seed ^ 0x5bd1e995c4426a73ULL);
  return 1.0 + rng.uniform(-rel, rel);
}

double RuntimePredictor::predict_execution_seconds(const Job& job) const {
  return job.estimated_execution_seconds() * error_factor(job);
}

double RuntimePredictor::predict_remaining_seconds(const Job& job) const {
  const int remaining =
      std::max(0, job.target_iterations() - job.completed_iterations());
  return job.ideal_iteration_seconds() * static_cast<double>(remaining) * error_factor(job);
}

void RuntimePredictor::record_completion(const Job& job) {
  seen_.insert(static_cast<int>(job.spec().algorithm), job.spec().gpu_request);
}

bool RuntimePredictor::has_history(const Job& job) const {
  return seen_.contains(static_cast<int>(job.spec().algorithm), job.spec().gpu_request);
}

void RuntimePredictor::save_state(io::BinWriter& w) const {
  // Sorted (algorithm, gpus) pairs: byte-identical to the historical
  // std::set-backed section (which iterated in sorted order).
  const std::vector<std::uint64_t> keys = seen_.sorted_keys();
  w.u64(keys.size());
  for (const std::uint64_t key : keys) {
    w.i64(SignatureSet::unpack_algorithm(key));
    w.i64(SignatureSet::unpack_gpus(key));
  }
}

void RuntimePredictor::restore_state(io::BinReader& r) {
  seen_.clear();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const int algorithm = static_cast<int>(r.i64());
    const int gpus = static_cast<int>(r.i64());
    seen_.insert(algorithm, gpus);
  }
}

}  // namespace mlfs
