#include "predict/runtime_predictor.hpp"

#include <algorithm>

#include "common/binio.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace mlfs {

RuntimePredictor::RuntimePredictor(double seen_rel_error, double unseen_rel_error)
    : seen_rel_error_(seen_rel_error), unseen_rel_error_(unseen_rel_error) {
  MLFS_EXPECT(seen_rel_error_ >= 0.0);
  MLFS_EXPECT(unseen_rel_error_ >= 0.0);
}

double RuntimePredictor::error_factor(const Job& job) const {
  const double rel = has_history(job) ? seen_rel_error_ : unseen_rel_error_;
  // Deterministic per-job perturbation in [1-rel, 1+rel]: re-querying the
  // predictor for the same job yields the same estimate (as a fitted model
  // would), and replays are reproducible.
  Rng rng(job.spec().seed ^ 0x5bd1e995c4426a73ULL);
  return 1.0 + rng.uniform(-rel, rel);
}

double RuntimePredictor::predict_execution_seconds(const Job& job) const {
  return job.estimated_execution_seconds() * error_factor(job);
}

double RuntimePredictor::predict_remaining_seconds(const Job& job) const {
  const int remaining =
      std::max(0, job.target_iterations() - job.completed_iterations());
  return job.ideal_iteration_seconds() * static_cast<double>(remaining) * error_factor(job);
}

void RuntimePredictor::record_completion(const Job& job) {
  seen_.insert({static_cast<int>(job.spec().algorithm), job.spec().gpu_request});
}

bool RuntimePredictor::has_history(const Job& job) const {
  return seen_.contains({static_cast<int>(job.spec().algorithm), job.spec().gpu_request});
}

void RuntimePredictor::save_state(io::BinWriter& w) const {
  w.u64(seen_.size());
  for (const auto& [algorithm, gpus] : seen_) {
    w.i64(algorithm);
    w.i64(gpus);
  }
}

void RuntimePredictor::restore_state(io::BinReader& r) {
  seen_.clear();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const int algorithm = static_cast<int>(r.i64());
    const int gpus = static_cast<int>(r.i64());
    seen_.insert({algorithm, gpus});
  }
}

}  // namespace mlfs
