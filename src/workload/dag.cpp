#include "workload/dag.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace mlfs {

void Dag::add_edge(std::size_t from, std::size_t to) {
  MLFS_EXPECT(from < node_count() && to < node_count());
  MLFS_EXPECT(from != to);
  auto& kids = children_[from];
  if (std::find(kids.begin(), kids.end(), to) != kids.end()) return;
  kids.push_back(to);
  parents_[to].push_back(from);
}

std::size_t Dag::edge_count() const {
  std::size_t n = 0;
  for (const auto& kids : children_) n += kids.size();
  return n;
}

std::vector<std::size_t> Dag::topological_order() const {
  std::vector<std::size_t> indegree(node_count());
  for (std::size_t v = 0; v < node_count(); ++v) indegree[v] = parents_[v].size();
  std::vector<std::size_t> frontier;
  for (std::size_t v = 0; v < node_count(); ++v) {
    if (indegree[v] == 0) frontier.push_back(v);
  }
  std::vector<std::size_t> order;
  order.reserve(node_count());
  while (!frontier.empty()) {
    const std::size_t u = frontier.back();
    frontier.pop_back();
    order.push_back(u);
    for (const std::size_t v : children_[u]) {
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  MLFS_ENSURE(order.size() == node_count());  // otherwise there is a cycle
  return order;
}

std::vector<std::size_t> Dag::reverse_topological_order() const {
  auto order = topological_order();
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<std::size_t> Dag::layers() const {
  std::vector<std::size_t> layer(node_count(), 0);
  for (const std::size_t u : topological_order()) {
    for (const std::size_t p : parents_[u]) layer[u] = std::max(layer[u], layer[p] + 1);
  }
  return layer;
}

std::vector<std::size_t> Dag::descendant_counts() const {
  // Bitset-free transitive closure via reverse topological merge of child
  // sets; jobs have at most a few hundred tasks so a per-node sorted vector
  // of descendants is fine.
  std::vector<std::vector<std::size_t>> desc(node_count());
  std::vector<std::size_t> counts(node_count(), 0);
  for (const std::size_t u : reverse_topological_order()) {
    std::vector<std::size_t> acc;
    for (const std::size_t c : children_[u]) {
      acc.push_back(c);
      acc.insert(acc.end(), desc[c].begin(), desc[c].end());
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    counts[u] = acc.size();
    desc[u] = std::move(acc);
  }
  return counts;
}

std::vector<std::size_t> Dag::depth_to_sink() const {
  std::vector<std::size_t> depth(node_count(), 0);
  for (const std::size_t u : reverse_topological_order()) {
    for (const std::size_t c : children_[u]) depth[u] = std::max(depth[u], depth[c] + 1);
  }
  return depth;
}

bool Dag::is_acyclic() const {
  std::vector<std::size_t> indegree(node_count());
  for (std::size_t v = 0; v < node_count(); ++v) indegree[v] = parents_[v].size();
  std::vector<std::size_t> frontier;
  for (std::size_t v = 0; v < node_count(); ++v) {
    if (indegree[v] == 0) frontier.push_back(v);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::size_t u = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const std::size_t v : children_[u]) {
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  return visited == node_count();
}

}  // namespace mlfs
