#include "workload/model_zoo.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/expect.hpp"

namespace mlfs {

namespace {

constexpr std::array<ModelProfile, 5> kProfiles = {{
    // algorithm, style, params_m range, base iter s, batch MB, a_max range, kappa range,
    // comm duty cycle
    {MlAlgorithm::AlexNet, PartitionStyle::Sequential, 55.0, 65.0, 45.0, 1.0, 0.75, 0.88, 5.0,
     15.0, 0.45},
    {MlAlgorithm::ResNet, PartitionStyle::Layered, 20.0, 30.0, 90.0, 1.0, 0.85, 0.96, 8.0, 20.0,
     0.25},
    {MlAlgorithm::Mlp, PartitionStyle::Sequential, 1.0, 5.0, 15.0, 0.0015, 0.70, 0.90, 4.0, 10.0,
     0.35},
    {MlAlgorithm::Lstm, PartitionStyle::Layered, 8.0, 15.0, 60.0, 0.0015, 0.72, 0.92, 6.0, 16.0,
     0.40},
    {MlAlgorithm::Svm, PartitionStyle::DataParallelOnly, 0.05, 0.5, 8.0, 0.0015, 0.65, 0.85, 3.0,
     8.0, 0.15},
}};

std::size_t profile_index(MlAlgorithm a) {
  for (std::size_t i = 0; i < kProfiles.size(); ++i) {
    if (kProfiles[i].algorithm == a) return i;
  }
  MLFS_EXPECT(false && "unknown algorithm");
  return 0;
}

/// Stage layout for Layered partitioning: P partitions arranged as
/// `stages` sequential groups of `width` parallel layer-parts.
struct StageLayout {
  std::size_t stages;
  std::size_t width;
};

StageLayout layered_layout(std::size_t partitions) {
  // Wider than deep for small counts, deeper for big models; every
  // partition count in {1,2,4,8,16,32} factors exactly.
  switch (partitions) {
    case 1: return {1, 1};
    case 2: return {1, 2};
    case 4: return {2, 2};
    case 8: return {2, 4};
    case 16: return {4, 4};
    case 32: return {4, 8};
    default: {
      const auto width = static_cast<std::size_t>(std::max(1.0, std::sqrt(partitions)));
      const std::size_t stages = (partitions + width - 1) / width;
      return {stages, width};
    }
  }
}

}  // namespace

const ModelProfile& ModelZoo::profile(MlAlgorithm algorithm) {
  return kProfiles[profile_index(algorithm)];
}

double comm_duty_cycle(MlAlgorithm algorithm) {
  return ModelZoo::profile(algorithm).comm_duty_cycle;
}

MlAlgorithm ModelZoo::algorithm_at(std::size_t index) {
  MLFS_EXPECT(index < kProfiles.size());
  return kProfiles[index].algorithm;
}

ModelZoo::Instantiated ModelZoo::instantiate(const JobSpec& spec, TaskId first_task_id) {
  MLFS_EXPECT(spec.gpu_request >= 1);
  const ModelProfile& prof = profile(spec.algorithm);
  Rng rng(spec.seed ^ 0xabcdef1234567890ULL);

  const auto partitions = static_cast<std::size_t>(spec.gpu_request);
  const bool has_ps = spec.comm == CommStructure::ParameterServer;
  const std::size_t node_count = partitions + (has_ps ? 1 : 0);

  // Total model size for this job instance.
  const double total_params_m = rng.uniform(prof.params_m_min, prof.params_m_max);

  // --- partition sizes (S_k) ---
  // Sequential/Layered: random uneven split of the model. DataParallelOnly:
  // each worker holds the full model (S_k/S_J == 1 for all — the spatial
  // size feature is neutral for pure data parallelism, as it should be).
  std::vector<double> partition_params(partitions);
  if (prof.style == PartitionStyle::DataParallelOnly) {
    std::fill(partition_params.begin(), partition_params.end(), total_params_m);
  } else {
    double total_weight = 0.0;
    for (auto& w : partition_params) {
      w = rng.uniform(0.5, 1.5);
      total_weight += w;
    }
    for (auto& w : partition_params) w = total_params_m * (w / total_weight);
  }

  // --- dependency graph ---
  Dag dag(node_count);
  switch (prof.style) {
    case PartitionStyle::Sequential:
      for (std::size_t i = 0; i + 1 < partitions; ++i) dag.add_edge(i, i + 1);
      break;
    case PartitionStyle::Layered: {
      const StageLayout layout = layered_layout(partitions);
      auto node_of = [&](std::size_t stage, std::size_t part) {
        return std::min(stage * layout.width + part, partitions - 1);
      };
      for (std::size_t s = 0; s + 1 < layout.stages; ++s) {
        for (std::size_t a = 0; a < layout.width; ++a) {
          for (std::size_t b = 0; b < layout.width; ++b) {
            const std::size_t from = node_of(s, a);
            const std::size_t to = node_of(s + 1, b);
            if (from != to) dag.add_edge(from, to);
          }
        }
      }
      break;
    }
    case PartitionStyle::DataParallelOnly:
      break;  // independent workers
  }
  if (has_ps) {
    // Workers feed the parameter server; it is the sink of every chain.
    for (std::size_t i = 0; i < partitions; ++i) {
      if (dag.children(i).empty() || prof.style == PartitionStyle::DataParallelOnly) {
        dag.add_edge(i, partitions);
      }
    }
    // Ensure connectivity even if every worker had children (layered case
    // where only last-stage nodes are sinks is already handled above).
  }

  // --- per-task compute time ---
  // Sequential chain: partition times sum to ~base (a batch flows through
  // all partitions). Layered: stage s holds width parallel parts, each
  // ~base/P, so the critical path is ~base/width per stage. SVM: each
  // worker runs the full model on its shard (base seconds).
  std::vector<double> compute_seconds(partitions);
  const double size_scale = spec.train_data_mb / 500.0;  // data size scales epoch time
  for (std::size_t i = 0; i < partitions; ++i) {
    double share = 0.0;
    if (prof.style == PartitionStyle::DataParallelOnly) {
      // Data shard per worker: full model, 1/P of the data.
      share = 1.0 / static_cast<double>(partitions);
    } else {
      share = partition_params[i] / total_params_m;
    }
    compute_seconds[i] =
        prof.base_iteration_seconds * share * size_scale * rng.lognormal(0.0, 0.15);
    compute_seconds[i] = std::max(compute_seconds[i], 0.05);
  }

  // --- tasks ---
  std::vector<Task> tasks;
  tasks.reserve(node_count);
  std::vector<TaskId> ids;
  ids.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    Task t;
    t.id = first_task_id + static_cast<TaskId>(i);
    t.job = spec.id;
    t.local_index = static_cast<std::uint32_t>(i);
    t.is_parameter_server = has_ps && i == partitions;
    if (t.is_parameter_server) {
      t.partition_params_m = total_params_m;  // PS holds the full model
      t.state_size_mb = 4.0 * total_params_m;
      t.base_compute_seconds = 0.2 * prof.base_iteration_seconds /
                               static_cast<double>(partitions);  // aggregation cost
      t.demand = ResourceVector(/*gpu=*/0.05, /*cpu=*/rng.uniform(0.08, 0.15),
                                /*mem=*/std::clamp(0.004 * total_params_m, 0.02, 0.35),
                                /*net=*/std::clamp(spec.comm_volume_ps_mb *
                                                       static_cast<double>(partitions) / 4000.0,
                                                   0.02, 0.20));
    } else {
      t.partition_params_m = partition_params[i];
      t.state_size_mb = 4.0 * partition_params[i] + 2.0 * prof.batch_mb;
      t.base_compute_seconds = compute_seconds[i];
      // Nominal GPU demand stays below the overload threshold h_r (0.9)
      // so every task is placeable on an idle GPU; fluctuation noise is
      // what pushes servers over the line at runtime.
      // Two light workers can share a GPU under h_r=0.9; heavier ones own
      // one. Makes GPU sharing (and its contention slowdown) a real event.
      const double gpu_demand = prof.style == PartitionStyle::DataParallelOnly
                                    ? rng.uniform(0.20, 0.40)
                                    : rng.uniform(0.35, 0.62);
      const double comm_mb =
          has_ps ? spec.comm_volume_ps_mb : spec.comm_volume_ww_mb;
      t.demand = ResourceVector(
          gpu_demand, rng.uniform(0.02, 0.08),
          std::clamp(0.004 * t.partition_params_m + 0.01 * prof.batch_mb, 0.02, 0.30),
          std::clamp(comm_mb / 1500.0, 0.01, 0.10));
    }
    // Persistent demand mis-estimation: solo tasks stay within the
    // overload threshold, but co-located underestimates overload servers
    // in a way only migration can fix (the §3.3.3 scenario).
    t.usage_bias = std::clamp(rng.lognormal(0.05, 0.15), 0.8, 1.45);
    ids.push_back(t.id);
    tasks.push_back(t);
  }

  // --- ideal (no contention) iteration time: DAG critical path + comm ---
  std::vector<double> finish(node_count, 0.0);
  double critical_path = 0.0;
  for (const std::size_t u : dag.topological_order()) {
    double start = 0.0;
    for (const std::size_t p : dag.parents(u)) start = std::max(start, finish[p]);
    const double comm_in =
        dag.parents(u).empty()
            ? 0.0
            : (has_ps && u == partitions ? spec.comm_volume_ps_mb : spec.comm_volume_ww_mb) /
                  kReferenceBandwidthMBps;
    finish[u] = start + comm_in + tasks[u].base_compute_seconds;
    critical_path = std::max(critical_path, finish[u]);
  }
  if (spec.comm == CommStructure::AllReduce) {
    // Ring all-reduce round at the end of each iteration.
    critical_path += spec.comm_volume_ww_mb / kReferenceBandwidthMBps;
  }

  Job job(spec, std::move(dag), std::move(ids), total_params_m, critical_path);
  const double t_e = job.estimated_execution_seconds();
  job.set_deadline(spec.arrival + std::max(1.1 * t_e, hours(spec.deadline_slack_hours)));
  return {std::move(job), std::move(tasks)};
}

}  // namespace mlfs
