// The workload's central types: the static description of a submitted job
// (JobSpec), one schedulable unit (Task = one model partition × one
// mini-batch worker, §3.2), and the runtime Job object that tracks
// iteration progress, loss reductions, deadlines and stop policy.
#pragma once

#include <span>
#include <vector>

#include "common/sim_time.hpp"
#include "workload/dag.hpp"
#include "workload/ids.hpp"
#include "workload/loss_curve.hpp"
#include "workload/resources.hpp"

namespace mlfs::io {
class BinWriter;
class BinReader;
}  // namespace mlfs::io

namespace mlfs {

/// Everything known about a job at submission time. Produced by the trace
/// generator (or a trace file) and consumed by ModelZoo::instantiate.
struct JobSpec {
  JobId id = kInvalidJob;
  MlAlgorithm algorithm = MlAlgorithm::Mlp;
  CommStructure comm = CommStructure::ParameterServer;
  SimTime arrival = 0.0;
  double urgency = 1.0;      ///< L_J in [0, m] (§3.3.1); higher = more urgent
  int max_iterations = 50;   ///< I_max
  int gpu_request = 1;       ///< in {1,2,4,8,16,32}; also the model-partition count (§4.1)
  double train_data_mb = 500.0;
  double accuracy_requirement = 0.7;  ///< a^r_J
  double deadline_slack_hours = 4.0;  ///< t_r ~ U[0.5, 24] h (§4.1)
  LossCurve::Params curve;
  double comm_volume_ps_mb = 75.0;  ///< per-communication worker->PS volume (§4.1: U[50,100] MB)
  double comm_volume_ww_mb = 75.0;  ///< per-communication worker<->worker volume
  StopPolicy stop_policy = StopPolicy::FixedIterations;
  StopPolicy min_allowed_policy = StopPolicy::FixedIterations;  ///< MLF-C downgrade bound (§3.5)
  std::uint64_t seed = 0;  ///< per-job stream for task-level randomness
};

/// One schedulable unit. Static fields are set once by ModelZoo; dynamic
/// fields are owned by the simulation (placement, waiting accounting).
struct Task {
  // -- static --
  TaskId id = kInvalidTask;
  JobId job = kInvalidJob;
  std::uint32_t local_index = 0;  ///< node index in the job's Dag
  bool is_parameter_server = false;
  double partition_params_m = 1.0;    ///< S_k, millions of parameters
  double state_size_mb = 100.0;       ///< migration payload (weights + activations)
  ResourceVector demand;              ///< GPU share of one GPU; CPU/MEM/NET share of a server
  double base_compute_seconds = 1.0;  ///< per-iteration compute on an unshared reference GPU

  // -- dynamic (simulation-owned) --
  TaskState state = TaskState::Queued;
  ServerId server = kInvalidServer;
  int gpu = kNoGpu;
  SimTime queued_since = 0.0;
  double total_waiting = 0.0;
  int migrations = 0;
  /// Persistent estimation error of the declared demand: actual usage
  /// centers on demand × usage_bias (users misdeclare; the scheduler's
  /// feasibility checks see only the declared demand).
  double usage_bias = 1.0;
  /// Multiplicative fluctuation applied on top, resampled by the engine
  /// each tick; actual usage at time t = demand × usage_factor where
  /// usage_factor ≈ usage_bias × tick noise (1.0 while queued).
  double usage_factor = 1.0;
  /// One-time extra seconds added to the next iteration (migration cost).
  double pending_penalty_seconds = 0.0;

  bool placed() const { return server != kInvalidServer; }
};

/// Runtime job: static spec + DAG + per-iteration progress. Task structs
/// live in a global pool owned by the cluster; the job stores their ids
/// (tasks()[local_index] is the global id of DAG node local_index).
class Job {
 public:
  Job(JobSpec spec, Dag dag, std::vector<TaskId> task_ids, double total_params_m,
      double ideal_iteration_seconds);

  const JobSpec& spec() const { return spec_; }
  JobId id() const { return spec_.id; }
  const Dag& dag() const { return dag_; }
  std::span<const TaskId> tasks() const { return task_ids_; }
  TaskId task_at(std::size_t local_index) const { return task_ids_[local_index]; }
  std::size_t task_count() const { return task_ids_.size(); }
  double total_params_m() const { return total_params_m_; }

  /// Critical-path seconds of one iteration with no contention — the
  /// "sample run" estimate used for deadlines and runtime prediction.
  double ideal_iteration_seconds() const { return ideal_iteration_seconds_; }

  /// Estimated total execution time t_e (ideal, excluding queueing).
  double estimated_execution_seconds() const {
    return ideal_iteration_seconds_ * spec_.max_iterations;
  }

  // -- iteration progress --
  int completed_iterations() const { return static_cast<int>(loss_reductions_.size()); }
  /// Records completion of the next iteration and its observed delta-loss.
  void complete_iteration();
  /// Discards the most recent `n` completed iterations (capped at the
  /// completed count) — failure recovery rolls a job back to its last
  /// checkpoint, and the lost iterations must be re-run. Re-running them
  /// reproduces the same observed delta-losses (the curve is a pure
  /// function of the iteration index), so accounting stays replayable.
  void rollback_iterations(int n);
  const std::vector<double>& loss_reductions() const { return loss_reductions_; }
  double cumulative_loss_reduction() const { return cumulative_loss_reduction_; }
  /// Noise-free accuracy at the current iteration count.
  double current_accuracy() const { return curve_.accuracy_at(completed_iterations()); }
  const LossCurve& curve() const { return curve_; }

  // -- stop policy (mutated by MLF-C §3.5) --
  StopPolicy active_policy() const { return active_policy_; }
  /// Downgrades toward `policy` if the user's min_allowed_policy permits;
  /// returns true when the active policy actually changed.
  bool downgrade_policy(StopPolicy policy);
  /// Iterations the job will run under the current policy; engine/MLF-C
  /// recompute this when the policy or predictions change.
  int target_iterations() const { return target_iterations_; }
  void set_target_iterations(int n);

  // -- requirements & lifecycle --
  SimTime deadline() const { return deadline_; }
  void set_deadline(SimTime d) { deadline_ = d; }

  JobState state() const { return state_; }
  void set_state(JobState s) { state_ = s; }
  SimTime completion_time() const { return completion_time_; }
  void set_completion_time(SimTime t) { completion_time_ = t; }
  double waiting_time() const { return waiting_time_; }
  void add_waiting_time(double dt) { waiting_time_ += dt; }

  /// Iterations finished when the deadline passed (-1 until recorded).
  int iterations_at_deadline() const { return iterations_at_deadline_; }
  void record_deadline_progress() { iterations_at_deadline_ = completed_iterations(); }

  /// Accuracy achieved by min(deadline, completion) — the paper's
  /// "accuracy by job deadline" metric (§4.2.1, Figs. 4(e)/5(e)).
  double accuracy_by_deadline() const;

  /// Terminal: the job finished (Completed) or was abandoned after
  /// exhausting its fault-retry budget (Failed). Success-conditional
  /// metrics must test state() == JobState::Completed, not done().
  bool done() const {
    return state_ == JobState::Completed || state_ == JobState::Failed;
  }

  /// Snapshot support: serializes/restores the dynamic progress state
  /// (spec/DAG/curve are static and rebuilt by construction). The
  /// cumulative loss reduction is stored bit-exactly rather than re-summed
  /// — complete_iteration/rollback_iterations accumulate it add-then-
  /// subtract, so its float value depends on the history, not just the
  /// surviving elements.
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

 private:
  JobSpec spec_;
  Dag dag_;
  std::vector<TaskId> task_ids_;
  double total_params_m_;
  double ideal_iteration_seconds_;
  LossCurve curve_;

  std::vector<double> loss_reductions_;
  double cumulative_loss_reduction_ = 0.0;

  StopPolicy active_policy_;
  int target_iterations_;

  SimTime deadline_ = 0.0;
  JobState state_ = JobState::Waiting;
  SimTime completion_time_ = -1.0;
  double waiting_time_ = 0.0;
  int iterations_at_deadline_ = -1;
};

}  // namespace mlfs
