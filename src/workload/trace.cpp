#include "workload/trace.hpp"

#include "workload/model_zoo.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numbers>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace mlfs {

namespace {
constexpr std::array<int, 6> kGpuChoices = {1, 2, 4, 8, 16, 32};
}

PhillyTraceGenerator::PhillyTraceGenerator(const TraceConfig& config)
    : config_(config), rng_(config.seed) {
  MLFS_EXPECT(config_.num_jobs > 0);
  MLFS_EXPECT(config_.duration_hours > 0.0);
  MLFS_EXPECT(config_.min_iterations >= 1);
  MLFS_EXPECT(config_.min_iterations <= config_.max_iterations);
  MLFS_EXPECT(config_.diurnal_amplitude >= 0.0 && config_.diurnal_amplitude < 1.0);
  MLFS_EXPECT(config_.policy_fixed_fraction + config_.policy_optstop_fraction <= 1.0 + 1e-9);
}

std::vector<SimTime> PhillyTraceGenerator::arrival_times() {
  // Rejection-sample exactly num_jobs arrivals against the diurnal profile.
  const double window = hours(config_.duration_hours);
  std::vector<SimTime> arrivals;
  arrivals.reserve(config_.num_jobs);
  const double peak = 1.0 + config_.diurnal_amplitude;
  while (arrivals.size() < config_.num_jobs) {
    const double t = rng_.uniform(0.0, window);
    const double rate =
        1.0 + config_.diurnal_amplitude * std::sin(2.0 * std::numbers::pi * t / hours(24.0));
    if (rng_.uniform() * peak <= rate) arrivals.push_back(t);
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

JobSpec PhillyTraceGenerator::make_job(JobId id, SimTime arrival) {
  JobSpec spec;
  spec.id = id;
  spec.arrival = arrival;
  spec.seed = rng_.next_u64();

  const std::size_t algo_index =
      static_cast<std::size_t>(rng_.uniform_int(0, static_cast<std::int64_t>(
                                                      ModelZoo::algorithm_count()) - 1));
  spec.algorithm = ModelZoo::algorithm_at(algo_index);
  const ModelProfile& prof = ModelZoo::profile(spec.algorithm);

  spec.gpu_request = std::min(kGpuChoices[rng_.weighted_index(config_.gpu_request_weights)],
                              config_.max_gpu_request);
  // SVM cannot be model-partitioned (§4.1) — it is data-parallel only, and
  // large SVM jobs stay modest in worker count.
  if (spec.algorithm == MlAlgorithm::Svm) {
    spec.gpu_request = std::min(spec.gpu_request, 8);
  }
  spec.comm = rng_.bernoulli(config_.parameter_server_fraction)
                  ? CommStructure::ParameterServer
                  : CommStructure::AllReduce;

  spec.urgency = static_cast<double>(rng_.uniform_int(1, config_.urgency_levels));
  spec.train_data_mb = rng_.uniform(100.0, 1000.0);
  spec.comm_volume_ps_mb = rng_.uniform(50.0, 100.0);
  spec.comm_volume_ww_mb = rng_.uniform(50.0, 100.0);
  spec.deadline_slack_hours = rng_.uniform(0.5, 24.0);

  // Training curve for this job instance.
  spec.curve.max_accuracy = rng_.uniform(prof.max_accuracy_min, prof.max_accuracy_max);
  spec.curve.kappa = rng_.uniform(prof.kappa_min, prof.kappa_max);
  spec.curve.initial_loss = rng_.uniform(1.5, 3.0);
  spec.curve.final_loss = rng_.uniform(0.05, 0.3);
  spec.curve.noise_sigma = config_.loss_noise_sigma;
  spec.curve.noise_seed = rng_.next_u64();

  // Accuracy requirement reachable under the curve; iteration budget
  // over-provisioned beyond the requirement (the slack MLF-C reclaims).
  spec.accuracy_requirement = spec.curve.max_accuracy * rng_.uniform(0.80, 0.97);
  const LossCurve curve(spec.curve);
  const int needed =
      curve.iterations_to_accuracy(spec.accuracy_requirement, config_.max_iterations);
  int sampled = static_cast<int>(
      rng_.lognormal(config_.iteration_lognorm_mu, config_.iteration_lognorm_sigma));
  sampled = std::clamp(sampled, config_.min_iterations, config_.max_iterations);
  const double headroom =
      rng_.uniform(config_.iteration_headroom_min, config_.iteration_headroom_max);
  spec.max_iterations = std::clamp(
      std::max(sampled, static_cast<int>(std::ceil(needed * headroom))),
      config_.min_iterations, config_.max_iterations);
  // If the budget got clamped below what the requirement needs, relax the
  // requirement to what the budget can reach (users ask for the feasible).
  if (curve.iterations_to_accuracy(spec.accuracy_requirement, spec.max_iterations + 1) >
      spec.max_iterations) {
    spec.accuracy_requirement = 0.98 * curve.accuracy_at(spec.max_iterations);
  }

  // Stop policy mix + downgrade permission (§3.5).
  const double u = rng_.uniform();
  if (u < config_.policy_fixed_fraction) {
    spec.stop_policy = StopPolicy::FixedIterations;
  } else if (u < config_.policy_fixed_fraction + config_.policy_optstop_fraction) {
    spec.stop_policy = StopPolicy::OptStop;
  } else {
    spec.stop_policy = StopPolicy::AccuracyOnly;
  }
  spec.min_allowed_policy =
      rng_.bernoulli(config_.allow_downgrade_fraction) ? StopPolicy::AccuracyOnly
                                                       : spec.stop_policy;
  return spec;
}

std::vector<JobSpec> PhillyTraceGenerator::generate() {
  std::vector<JobSpec> jobs;
  jobs.reserve(config_.num_jobs);
  JobId id = 0;
  for (const SimTime arrival : arrival_times()) jobs.push_back(make_job(id++, arrival));
  return jobs;
}

// ---------------------------------------------------------------- CSV I/O

namespace {
constexpr const char* kHeader =
    "id,algorithm,comm,arrival,urgency,max_iterations,gpu_request,train_data_mb,"
    "accuracy_requirement,deadline_slack_hours,curve_max_accuracy,curve_kappa,"
    "curve_initial_loss,curve_final_loss,curve_noise_sigma,curve_noise_seed,"
    "comm_volume_ps_mb,comm_volume_ww_mb,stop_policy,min_allowed_policy,seed";

MlAlgorithm algorithm_from_string(const std::string& s) {
  for (std::size_t i = 0; i < ModelZoo::algorithm_count(); ++i) {
    const MlAlgorithm a = ModelZoo::algorithm_at(i);
    if (to_string(a) == s) return a;
  }
  throw ContractViolation("unknown algorithm in trace: " + s);
}

CommStructure comm_from_string(const std::string& s) {
  if (s == "parameter-server") return CommStructure::ParameterServer;
  if (s == "all-reduce") return CommStructure::AllReduce;
  throw ContractViolation("unknown comm structure in trace: " + s);
}

StopPolicy policy_from_string(const std::string& s) {
  if (s == "fixed-iterations") return StopPolicy::FixedIterations;
  if (s == "opt-stop") return StopPolicy::OptStop;
  if (s == "accuracy-only") return StopPolicy::AccuracyOnly;
  throw ContractViolation("unknown stop policy in trace: " + s);
}
}  // namespace

void write_trace_csv(std::ostream& os, const std::vector<JobSpec>& jobs) {
  os << kHeader << '\n';
  os.precision(17);
  for (const JobSpec& j : jobs) {
    os << j.id << ',' << to_string(j.algorithm) << ',' << to_string(j.comm) << ',' << j.arrival
       << ',' << j.urgency << ',' << j.max_iterations << ',' << j.gpu_request << ','
       << j.train_data_mb << ',' << j.accuracy_requirement << ',' << j.deadline_slack_hours << ','
       << j.curve.max_accuracy << ',' << j.curve.kappa << ',' << j.curve.initial_loss << ','
       << j.curve.final_loss << ',' << j.curve.noise_sigma << ',' << j.curve.noise_seed << ','
       << j.comm_volume_ps_mb << ',' << j.comm_volume_ww_mb << ',' << to_string(j.stop_policy)
       << ',' << to_string(j.min_allowed_policy) << ',' << j.seed << '\n';
  }
}

std::vector<JobSpec> read_trace_csv(std::istream& is) {
  std::string line;
  MLFS_EXPECT(static_cast<bool>(std::getline(is, line)));  // header
  std::vector<JobSpec> jobs;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    MLFS_EXPECT(fields.size() == 21);
    JobSpec j;
    std::size_t i = 0;
    j.id = static_cast<JobId>(std::stoul(fields[i++]));
    j.algorithm = algorithm_from_string(fields[i++]);
    j.comm = comm_from_string(fields[i++]);
    j.arrival = std::stod(fields[i++]);
    j.urgency = std::stod(fields[i++]);
    j.max_iterations = std::stoi(fields[i++]);
    j.gpu_request = std::stoi(fields[i++]);
    j.train_data_mb = std::stod(fields[i++]);
    j.accuracy_requirement = std::stod(fields[i++]);
    j.deadline_slack_hours = std::stod(fields[i++]);
    j.curve.max_accuracy = std::stod(fields[i++]);
    j.curve.kappa = std::stod(fields[i++]);
    j.curve.initial_loss = std::stod(fields[i++]);
    j.curve.final_loss = std::stod(fields[i++]);
    j.curve.noise_sigma = std::stod(fields[i++]);
    j.curve.noise_seed = std::stoull(fields[i++]);
    j.comm_volume_ps_mb = std::stod(fields[i++]);
    j.comm_volume_ww_mb = std::stod(fields[i++]);
    j.stop_policy = policy_from_string(fields[i++]);
    j.min_allowed_policy = policy_from_string(fields[i++]);
    j.seed = std::stoull(fields[i++]);
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace mlfs
