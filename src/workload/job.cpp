#include "workload/job.hpp"

#include <algorithm>

#include "common/binio.hpp"
#include "common/expect.hpp"

namespace mlfs {

std::string to_string(MlAlgorithm a) {
  switch (a) {
    case MlAlgorithm::AlexNet: return "AlexNet";
    case MlAlgorithm::ResNet: return "ResNet";
    case MlAlgorithm::Mlp: return "MLP";
    case MlAlgorithm::Lstm: return "LSTM";
    case MlAlgorithm::Svm: return "SVM";
  }
  return "?";
}

std::string to_string(CommStructure c) {
  switch (c) {
    case CommStructure::ParameterServer: return "parameter-server";
    case CommStructure::AllReduce: return "all-reduce";
  }
  return "?";
}

std::string to_string(StopPolicy p) {
  switch (p) {
    case StopPolicy::FixedIterations: return "fixed-iterations";
    case StopPolicy::OptStop: return "opt-stop";
    case StopPolicy::AccuracyOnly: return "accuracy-only";
  }
  return "?";
}

Job::Job(JobSpec spec, Dag dag, std::vector<TaskId> task_ids, double total_params_m,
         double ideal_iteration_seconds)
    : spec_(std::move(spec)),
      dag_(std::move(dag)),
      task_ids_(std::move(task_ids)),
      total_params_m_(total_params_m),
      ideal_iteration_seconds_(ideal_iteration_seconds),
      curve_(spec_.curve),
      active_policy_(spec_.stop_policy),
      target_iterations_(spec_.max_iterations) {
  MLFS_EXPECT(dag_.node_count() == task_ids_.size());
  MLFS_EXPECT(!task_ids_.empty());
  MLFS_EXPECT(spec_.max_iterations >= 1);
  MLFS_EXPECT(total_params_m_ > 0.0);
  MLFS_EXPECT(ideal_iteration_seconds_ > 0.0);
  loss_reductions_.reserve(static_cast<std::size_t>(spec_.max_iterations));
}

void Job::complete_iteration() {
  const int next = completed_iterations() + 1;
  MLFS_EXPECT(next <= spec_.max_iterations);
  const double dl = curve_.observed_delta_loss(next);
  loss_reductions_.push_back(dl);
  cumulative_loss_reduction_ += dl;
}

void Job::rollback_iterations(int n) {
  MLFS_EXPECT(n >= 0);
  const int drop = std::min(n, completed_iterations());
  for (int i = 0; i < drop; ++i) {
    cumulative_loss_reduction_ -= loss_reductions_.back();
    loss_reductions_.pop_back();
  }
}

bool Job::downgrade_policy(StopPolicy policy) {
  // Policies are ordered: FixedIterations < OptStop < AccuracyOnly in
  // "aggressiveness"; min_allowed_policy bounds how far we may go.
  const int want = static_cast<int>(policy);
  const int active = static_cast<int>(active_policy_);
  const int allowed = static_cast<int>(spec_.min_allowed_policy);
  if (want <= active || want > allowed) return false;
  active_policy_ = policy;
  return true;
}

void Job::set_target_iterations(int n) {
  MLFS_EXPECT(n >= 0);
  target_iterations_ = std::min(n, spec_.max_iterations);
  // A job cannot un-run iterations it already finished.
  target_iterations_ = std::max(target_iterations_, completed_iterations());
}

void Job::save_state(io::BinWriter& w) const {
  w.vec_f64(loss_reductions_);
  w.f64(cumulative_loss_reduction_);
  w.u8(static_cast<std::uint8_t>(active_policy_));
  w.i64(target_iterations_);
  w.f64(deadline_);
  w.u8(static_cast<std::uint8_t>(state_));
  w.f64(completion_time_);
  w.f64(waiting_time_);
  w.i64(iterations_at_deadline_);
}

void Job::restore_state(io::BinReader& r) {
  loss_reductions_ = r.vec_f64();
  cumulative_loss_reduction_ = r.f64();
  active_policy_ = static_cast<StopPolicy>(r.u8());
  target_iterations_ = static_cast<int>(r.i64());
  deadline_ = r.f64();
  state_ = static_cast<JobState>(r.u8());
  completion_time_ = r.f64();
  waiting_time_ = r.f64();
  iterations_at_deadline_ = static_cast<int>(r.i64());
}

double Job::accuracy_by_deadline() const {
  // If the deadline never passed before completion, the job's final
  // accuracy counts; otherwise the accuracy frozen at the deadline does.
  if (iterations_at_deadline_ >= 0 &&
      (completion_time_ < 0.0 || completion_time_ > deadline_)) {
    return curve_.accuracy_at(iterations_at_deadline_);
  }
  return curve_.accuracy_at(completed_iterations());
}

}  // namespace mlfs
