#include "workload/loss_curve.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace mlfs {

LossCurve::LossCurve(const Params& params) : params_(params) {
  MLFS_EXPECT(params_.max_accuracy > 0.0 && params_.max_accuracy <= 1.0);
  MLFS_EXPECT(params_.kappa > 0.0);
  MLFS_EXPECT(params_.initial_loss >= params_.final_loss);
  MLFS_EXPECT(params_.noise_sigma >= 0.0);
}

double LossCurve::accuracy_at(int iteration) const {
  MLFS_EXPECT(iteration >= 0);
  const double i = static_cast<double>(iteration);
  return params_.max_accuracy * i / (i + params_.kappa);
}

double LossCurve::loss_at(int iteration) const {
  MLFS_EXPECT(iteration >= 0);
  const double i = static_cast<double>(iteration);
  return params_.final_loss +
         (params_.initial_loss - params_.final_loss) * params_.kappa / (i + params_.kappa);
}

double LossCurve::observed_delta_loss(int iteration) const {
  MLFS_EXPECT(iteration >= 1);
  const double clean = loss_at(iteration - 1) - loss_at(iteration);
  if (params_.noise_sigma == 0.0) return clean;
  // Deterministic per-(seed, iteration) noise: replaying a simulation must
  // observe the same values regardless of event interleaving.
  Rng rng(params_.noise_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(iteration)));
  return clean * rng.lognormal(0.0, params_.noise_sigma);
}

int LossCurve::iterations_to_accuracy(double target, int limit) const {
  MLFS_EXPECT(limit >= 0);
  if (target <= 0.0) return 0;
  if (target >= params_.max_accuracy) return limit;
  // accuracy(I) >= target  <=>  I >= kappa * target / (a_max - target)
  const double i = params_.kappa * target / (params_.max_accuracy - target);
  const int need = static_cast<int>(std::ceil(i - 1e-12));
  return need > limit ? limit : need;
}

}  // namespace mlfs
