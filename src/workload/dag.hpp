// Task dependency graph of one job (the "model partition graph" of §3.2).
// Nodes are job-local task indices; an edge u -> v means v consumes u's
// output, i.e. v is a *child* of u in the paper's priority recursion
// (Eq. 3: a task's priority folds in the discounted priorities of the tasks
// that depend on it).
#pragma once

#include <cstddef>
#include <vector>

namespace mlfs {

class Dag {
 public:
  Dag() = default;
  explicit Dag(std::size_t node_count) : children_(node_count), parents_(node_count) {}

  std::size_t node_count() const { return children_.size(); }

  /// Adds dependency edge from -> to ("to depends on from").
  /// Requires valid distinct node indices; duplicate edges are ignored.
  void add_edge(std::size_t from, std::size_t to);

  const std::vector<std::size_t>& children(std::size_t node) const { return children_[node]; }
  const std::vector<std::size_t>& parents(std::size_t node) const { return parents_[node]; }

  bool is_source(std::size_t node) const { return parents_[node].empty(); }
  bool is_sink(std::size_t node) const { return children_[node].empty(); }

  std::size_t edge_count() const;

  /// Topological order (Kahn). Throws ContractViolation if cyclic.
  std::vector<std::size_t> topological_order() const;

  /// Reverse of topological_order() — children before parents; the order
  /// in which Eq. 3's bottom-up priority recursion must visit nodes.
  std::vector<std::size_t> reverse_topological_order() const;

  /// Layer index per node: sources are layer 0, otherwise 1 + max(parents).
  std::vector<std::size_t> layers() const;

  /// Number of (transitive) descendants per node.
  std::vector<std::size_t> descendant_counts() const;

  /// Longest path length (in nodes) from each node to any sink, i.e. the
  /// critical-path depth used by Graphene-style troublesome scoring.
  std::vector<std::size_t> depth_to_sink() const;

  bool is_acyclic() const;

 private:
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::vector<std::size_t>> parents_;
};

}  // namespace mlfs
