// Identifier types and the small closed enums of the workload model.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace mlfs {

using JobId = std::uint32_t;
using TaskId = std::uint32_t;
using ServerId = std::uint32_t;

inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();
inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();
inline constexpr ServerId kInvalidServer = std::numeric_limits<ServerId>::max();
inline constexpr int kNoGpu = -1;

/// The five ML algorithms the paper's evaluation mixes (§4.1).
enum class MlAlgorithm { AlexNet, ResNet, Mlp, Lstm, Svm };

/// Parameter-accumulation structure (§3.2).
enum class CommStructure { ParameterServer, AllReduce };

/// MLF-C stop-policy options (§3.5): i) run the fixed iteration count,
/// ii) OptStop at the predicted accuracy plateau, iii) stop as soon as the
/// required accuracy is reached.
enum class StopPolicy { FixedIterations = 0, OptStop = 1, AccuracyOnly = 2 };

enum class TaskState { Queued, Running, Finished, Removed };

/// Failed is terminal like Completed: a job that exhausted its fault-retry
/// budget (sim/health.hpp) — it never completes and counts against JCT at
/// the time it was abandoned.
enum class JobState { Waiting, Running, Completed, Failed };

std::string to_string(MlAlgorithm a);
std::string to_string(CommStructure c);
std::string to_string(StopPolicy p);

}  // namespace mlfs
