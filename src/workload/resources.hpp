// Multi-resource vectors (§3.3.2): GPU, CPU, memory and network, each
// expressed as a fraction of a server's capacity (GPU as a fraction of a
// single GPU for task demands). The RIAL-style placement and migration
// logic compares these vectors by Euclidean distance.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>

namespace mlfs {

/// The M resource types the evaluation considers (§4.1: "CPU, memory, GPU
/// and bandwidth cost"). Extendable by growing the enum + kNumResources.
enum class Resource : std::size_t { Gpu = 0, Cpu = 1, Mem = 2, Net = 3 };

inline constexpr std::size_t kNumResources = 4;

/// Fixed-size vector over the resource types with the arithmetic the
/// schedulers need. Values are utilizations/demands in [0, ~1+] — values
/// above 1 mean oversubscription, which is exactly what overload detection
/// looks for.
class ResourceVector {
 public:
  constexpr ResourceVector() : v_{} {}
  constexpr ResourceVector(double gpu, double cpu, double mem, double net)
      : v_{gpu, cpu, mem, net} {}

  static constexpr ResourceVector uniform(double x) { return {x, x, x, x}; }

  double operator[](Resource r) const { return v_[static_cast<std::size_t>(r)]; }
  double& operator[](Resource r) { return v_[static_cast<std::size_t>(r)]; }
  double at(std::size_t i) const { return v_[i]; }
  double& at(std::size_t i) { return v_[i]; }

  ResourceVector& operator+=(const ResourceVector& o);
  ResourceVector& operator-=(const ResourceVector& o);
  ResourceVector& operator*=(double s);

  /// Euclidean (L2) norm — the paper's overload degree ||U_s|| (§3.5).
  double norm() const;

  /// Euclidean distance to another vector — the RIAL selection metric.
  double distance(const ResourceVector& o) const;

  /// True iff every component is <= o's component + eps.
  bool fits_within(const ResourceVector& o, double eps = 1e-9) const;

  /// Largest component value.
  double max_component() const;

  /// Clamps negative components to zero (guards accumulated float error).
  void clamp_non_negative();

  std::string to_string() const;

 private:
  std::array<double, kNumResources> v_;
};

ResourceVector operator+(ResourceVector a, const ResourceVector& b);
ResourceVector operator-(ResourceVector a, const ResourceVector& b);
ResourceVector operator*(ResourceVector a, double s);

std::ostream& operator<<(std::ostream& os, const ResourceVector& v);

const char* resource_name(Resource r);

}  // namespace mlfs
