// Analytic training curves with diminishing returns — the substitution for
// real DNN training (see DESIGN.md §2). The curves reproduce the two
// temporal properties MLFS exploits (§3.3.1): earlier iterations yield
// larger loss reductions, and accuracy saturates toward a per-job maximum.
//
// accuracy(I) = a_max * I / (I + kappa)          (hyperbolic saturation)
// loss(I)     = l_inf + (l0 - l_inf) * kappa / (I + kappa)
//
// so delta_loss(I) = loss(I-1) - loss(I) is positive and strictly
// decreasing in I — exactly the "diminishing loss reduction returns" the
// paper cites from SLAQ [58]. Optional multiplicative noise perturbs the
// per-iteration observations without changing the cumulative curve.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace mlfs {

class LossCurve {
 public:
  struct Params {
    double max_accuracy = 0.9;  ///< asymptotic accuracy a_max in (0, 1]
    double kappa = 8.0;         ///< saturation speed: accuracy(kappa) = a_max/2
    double initial_loss = 2.0;  ///< l0 at iteration 0
    double final_loss = 0.1;    ///< l_inf asymptote
    double noise_sigma = 0.0;   ///< lognormal sigma on observed delta-loss
    std::uint64_t noise_seed = 0;
  };

  LossCurve() : LossCurve(Params{}) {}
  explicit LossCurve(const Params& params);

  /// Noise-free accuracy after I completed iterations (I >= 0).
  double accuracy_at(int iteration) const;

  /// Noise-free loss after I completed iterations.
  double loss_at(int iteration) const;

  /// Observed loss reduction of iteration I (I >= 1), i.e. what the
  /// scheduler sees as delta-l_{I} — noisy when noise_sigma > 0 but
  /// deterministic per (seed, I) so replays agree.
  double observed_delta_loss(int iteration) const;

  /// Smallest iteration whose noise-free accuracy reaches `target`;
  /// returns `limit` when the target is unreachable within it.
  int iterations_to_accuracy(double target, int limit) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace mlfs
