// Profiles of the five ML algorithms the evaluation mixes (§4.1) and the
// factory that turns a JobSpec into a runtime Job + its Task pool entries.
//
// Partition structure follows the paper's setup: "In MLP and AlexNet,
// because of their sequential task dependency graph structures, we
// partitioned the model sequentially ... In LSTM and ResNet ... partitioned
// each layer into several parts ... SVM only used data parallelism", and
// "We also set the number of model partitions to [the GPU request]".
#pragma once

#include "common/rng.hpp"
#include "workload/job.hpp"

namespace mlfs {

enum class PartitionStyle {
  Sequential,        ///< chain of partitions (MLP, AlexNet)
  Layered,           ///< stages of parallel layer-parts (ResNet, LSTM)
  DataParallelOnly,  ///< independent full-model workers (SVM)
};

/// Static per-algorithm characteristics. Ranges are sampled per job by the
/// trace generator; point values parameterize instantiation.
struct ModelProfile {
  MlAlgorithm algorithm;
  PartitionStyle style;
  double params_m_min, params_m_max;     ///< model size range, millions of parameters
  double base_iteration_seconds;         ///< whole-model single-iteration compute, reference GPU
  double batch_mb;                       ///< mini-batch size (1 MB CNNs, 1.5 KB others; §4.1)
  double max_accuracy_min, max_accuracy_max;  ///< achievable-accuracy range
  double kappa_min, kappa_max;           ///< loss-curve saturation-speed range
  /// Compute/communicate duty cycle: the fraction of each iteration the
  /// model spends in its communication phase (gradient exchange), in
  /// (0, 1]. Parameter-heavy models with short iterations sit high (the
  /// network-bound regime); compute-bound models sit low. Consumed by the
  /// link-contention model (sim/link_model.hpp) when
  /// ClusterConfig::duty_cycles is on.
  double comm_duty_cycle;
};

class ModelZoo {
 public:
  /// Profile lookup; total 5 algorithms.
  static const ModelProfile& profile(MlAlgorithm algorithm);

  static constexpr std::size_t algorithm_count() { return 5; }
  static MlAlgorithm algorithm_at(std::size_t index);

  struct Instantiated {
    Job job;
    std::vector<Task> tasks;  ///< tasks[i].id == job.task_at(i)
  };

  /// Builds the runtime job: partitions the model per the algorithm's
  /// style into `spec.gpu_request` partitions (SVM: data-parallel
  /// workers), adds a parameter-server task when spec.comm is
  /// ParameterServer, assigns per-task sizes/demands/compute times from
  /// spec.seed-derived randomness, and computes the ideal iteration time
  /// and the deadline max(1.1 t_e, t_r) (§4.1).
  static Instantiated instantiate(const JobSpec& spec, TaskId first_task_id);

  /// Reference NIC throughput used to convert communication volumes into
  /// ideal-time estimates (MB/s).
  static constexpr double kReferenceBandwidthMBps = 1000.0;
};

/// A job's compute/communicate duty cycle — pure function of its
/// algorithm (ModelProfile::comm_duty_cycle).
double comm_duty_cycle(MlAlgorithm algorithm);

}  // namespace mlfs
