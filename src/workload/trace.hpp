// Synthetic Philly-style workload trace (substitution for the Microsoft
// DNN trace [3], see DESIGN.md §2) plus CSV (de)serialization so generated
// traces are replayable artifacts and real traces can be converted in.
//
// The generator reproduces the marginals the schedulers actually consume:
// diurnal arrivals, GPU-request distribution skewed toward small jobs
// (ATC'19 Philly analysis), heavy-tailed iteration counts (and therefore
// durations), per-job accuracy targets, and the §4.1 experiment settings
// (urgency ~ U[1,10], comm volumes ~ U[50,100] MB, data ~ U[100,1000] MB,
// deadline slack t_r ~ U[0.5,24] h).
#pragma once

#include <array>
#include <iosfwd>
#include <vector>

#include "workload/job.hpp"

namespace mlfs {

struct TraceConfig {
  std::size_t num_jobs = 620;
  double duration_hours = 24.0 * 7;  ///< arrival window (paper tests one trace week)
  std::uint64_t seed = 42;

  /// Arrival-rate modulation: rate(t) ∝ 1 + amplitude·sin(2π t / 24h).
  double diurnal_amplitude = 0.4;

  /// log-normal iteration-count distribution, clamped to [min, max].
  double iteration_lognorm_mu = 4.25;    ///< ~ln(70): Philly-like 1-2 h jobs
  double iteration_lognorm_sigma = 0.9;
  int min_iterations = 5;
  int max_iterations = 500;

  int urgency_levels = 10;  ///< m; urgency ~ uniform integers [1, m]

  /// Weights for GPU requests {1, 2, 4, 8, 16, 32} (small-job skew).
  std::array<double, 6> gpu_request_weights = {0.42, 0.17, 0.16, 0.12, 0.08, 0.05};

  /// Upper clamp on the GPU request. Must not exceed the target cluster's
  /// schedulable GPU count or the job can never be gang-placed (workers
  /// effectively own a GPU each); scenarios set this from the fleet size.
  int max_gpu_request = 32;

  double parameter_server_fraction = 0.7;  ///< rest use all-reduce

  /// Stop-policy mix across submitted jobs (§3.5 options i/ii/iii).
  double policy_fixed_fraction = 0.5;
  double policy_optstop_fraction = 0.3;  ///< remainder is AccuracyOnly
  /// Fraction of jobs whose users permit MLF-C to downgrade their option.
  double allow_downgrade_fraction = 0.8;

  double loss_noise_sigma = 0.10;

  /// Extra head-room multiplier on iterations beyond what the accuracy
  /// requirement needs — the over-provisioning OptStop reclaims (§3.5).
  double iteration_headroom_min = 1.1;
  double iteration_headroom_max = 2.5;
};

class PhillyTraceGenerator {
 public:
  explicit PhillyTraceGenerator(const TraceConfig& config);

  /// Generates `num_jobs` specs with ids 0..n-1, sorted by arrival time.
  std::vector<JobSpec> generate();

  const TraceConfig& config() const { return config_; }

 private:
  JobSpec make_job(JobId id, SimTime arrival);
  std::vector<SimTime> arrival_times();

  TraceConfig config_;
  Rng rng_;
};

/// CSV round-trip of job specs (header + one line per job; all fields).
void write_trace_csv(std::ostream& os, const std::vector<JobSpec>& jobs);
std::vector<JobSpec> read_trace_csv(std::istream& is);

}  // namespace mlfs
