#include "workload/resources.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace mlfs {

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  for (std::size_t i = 0; i < kNumResources; ++i) v_[i] += o.v_[i];
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  for (std::size_t i = 0; i < kNumResources; ++i) v_[i] -= o.v_[i];
  return *this;
}

ResourceVector& ResourceVector::operator*=(double s) {
  for (auto& x : v_) x *= s;
  return *this;
}

double ResourceVector::norm() const {
  double sq = 0.0;
  for (const double x : v_) sq += x * x;
  return std::sqrt(sq);
}

double ResourceVector::distance(const ResourceVector& o) const {
  double sq = 0.0;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    const double d = v_[i] - o.v_[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

bool ResourceVector::fits_within(const ResourceVector& o, double eps) const {
  for (std::size_t i = 0; i < kNumResources; ++i) {
    if (v_[i] > o.v_[i] + eps) return false;
  }
  return true;
}

double ResourceVector::max_component() const {
  double m = v_[0];
  for (const double x : v_) m = std::max(m, x);
  return m;
}

void ResourceVector::clamp_non_negative() {
  for (auto& x : v_) {
    if (x < 0.0) x = 0.0;
  }
}

std::string ResourceVector::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

ResourceVector operator+(ResourceVector a, const ResourceVector& b) { return a += b; }
ResourceVector operator-(ResourceVector a, const ResourceVector& b) { return a -= b; }
ResourceVector operator*(ResourceVector a, double s) { return a *= s; }

std::ostream& operator<<(std::ostream& os, const ResourceVector& v) {
  os << "[gpu=" << v[Resource::Gpu] << " cpu=" << v[Resource::Cpu] << " mem=" << v[Resource::Mem]
     << " net=" << v[Resource::Net] << "]";
  return os;
}

const char* resource_name(Resource r) {
  switch (r) {
    case Resource::Gpu: return "gpu";
    case Resource::Cpu: return "cpu";
    case Resource::Mem: return "mem";
    case Resource::Net: return "net";
  }
  return "?";
}

}  // namespace mlfs
