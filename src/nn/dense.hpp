// Fully connected layer: y = x W + b.
#pragma once

#include "nn/layer.hpp"

namespace mlfs::nn {

class Dense : public Layer {
 public:
  /// Glorot-initialized weights, zero bias.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;

  std::vector<Matrix*> params() override { return {&weights_, &bias_}; }
  std::vector<Matrix*> grads() override { return {&grad_weights_, &grad_bias_}; }

  std::size_t in_features() const { return weights_.rows(); }
  std::size_t out_features() const { return weights_.cols(); }

  const Matrix& weights() const { return weights_; }
  Matrix& weights() { return weights_; }
  const Matrix& bias() const { return bias_; }
  Matrix& bias() { return bias_; }

 private:
  Matrix weights_;       // in x out
  Matrix bias_;          // 1 x out
  Matrix grad_weights_;  // same shape as weights_
  Matrix grad_bias_;     // same shape as bias_
  Matrix last_input_;    // cached for backward
};

}  // namespace mlfs::nn
