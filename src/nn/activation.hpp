// Parameterless activation layers.
#pragma once

#include "nn/layer.hpp"

namespace mlfs::nn {

class Relu : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;

 private:
  Matrix last_input_;
};

class Tanh : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;

 private:
  Matrix last_output_;  // tanh' = 1 - tanh^2, so cache the output
};

}  // namespace mlfs::nn
