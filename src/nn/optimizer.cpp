#include "nn/optimizer.hpp"

#include <cmath>
#include <utility>

#include "common/binio.hpp"

namespace mlfs::nn {

Optimizer::Optimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads)
    : params_(std::move(params)), grads_(std::move(grads)) {
  MLFS_EXPECT(params_.size() == grads_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    MLFS_EXPECT(params_[i] != nullptr && grads_[i] != nullptr);
    MLFS_EXPECT(params_[i]->same_shape(*grads_[i]));
  }
}

double Optimizer::clip_gradients() {
  double sq = 0.0;
  for (const Matrix* g : grads_) {
    for (const double v : g->raw()) sq += v * v;
  }
  const double norm = std::sqrt(sq);
  if (max_grad_norm_ > 0.0 && norm > max_grad_norm_) {
    const double scale = max_grad_norm_ / norm;
    for (Matrix* g : grads_) *g *= scale;
  }
  return norm;
}

Sgd::Sgd(std::vector<Matrix*> params, std::vector<Matrix*> grads, double lr, double momentum)
    : Optimizer(std::move(params), std::move(grads)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0) {
    velocity_.reserve(params_.size());
    for (const Matrix* p : params_) velocity_.emplace_back(p->rows(), p->cols());
  }
}

void Sgd::step() {
  clip_gradients();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& p = *params_[i];
    const Matrix& g = *grads_[i];
    if (momentum_ != 0.0) {
      Matrix& vel = velocity_[i];
      for (std::size_t j = 0; j < p.size(); ++j) {
        vel.raw()[j] = momentum_ * vel.raw()[j] - lr_ * g.raw()[j];
        p.raw()[j] += vel.raw()[j];
      }
    } else {
      for (std::size_t j = 0; j < p.size(); ++j) p.raw()[j] -= lr_ * g.raw()[j];
    }
  }
}

Adam::Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params), std::move(grads)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Matrix* p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void Adam::step() {
  clip_gradients();
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& p = *params_[i];
    const Matrix& g = *grads_[i];
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      const double grad = g.raw()[j];
      m.raw()[j] = beta1_ * m.raw()[j] + (1.0 - beta1_) * grad;
      v.raw()[j] = beta2_ * v.raw()[j] + (1.0 - beta2_) * grad * grad;
      const double mhat = m.raw()[j] / bc1;
      const double vhat = v.raw()[j] / bc2;
      p.raw()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::save_state(io::BinWriter& w) const {
  w.u64(t_);
  for (const Matrix& m : m_) w.vec_f64(m.raw());
  for (const Matrix& v : v_) w.vec_f64(v.raw());
}

void Adam::restore_state(io::BinReader& r) {
  t_ = static_cast<std::size_t>(r.u64());
  for (Matrix& m : m_) {
    std::vector<double> data = r.vec_f64();
    MLFS_EXPECT(data.size() == m.size());
    m.raw() = std::move(data);
  }
  for (Matrix& v : v_) {
    std::vector<double> data = r.vec_f64();
    MLFS_EXPECT(data.size() == v.size());
    v.raw() = std::move(data);
  }
}

}  // namespace mlfs::nn
