// Layer abstraction for the MLP: forward caches whatever backward needs;
// backward accumulates parameter gradients and returns the gradient with
// respect to the layer input.
#pragma once

#include <memory>
#include <vector>

#include "nn/matrix.hpp"

namespace mlfs::nn {

/// One differentiable layer. Layers own their parameters and gradient
/// buffers; the optimizer sees them through params()/grads().
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch (rows = samples).
  virtual Matrix forward(const Matrix& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter grads and returns
  /// dLoss/dInput. Must be called after forward() on the same batch.
  virtual Matrix backward(const Matrix& grad_output) = 0;

  /// Mutable views of parameters and their gradient accumulators
  /// (parallel vectors; empty for parameterless layers).
  virtual std::vector<Matrix*> params() { return {}; }
  virtual std::vector<Matrix*> grads() { return {}; }

  /// Clears accumulated gradients.
  void zero_grads() {
    for (Matrix* g : grads()) g->zero();
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace mlfs::nn
