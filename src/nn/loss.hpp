// Softmax / log-softmax and the loss heads used by the RL code:
// cross-entropy for behaviour cloning, policy-gradient surrogate for
// REINFORCE, and squared error for the value baseline.
#pragma once

#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace mlfs::nn {

/// Row-wise softmax (numerically stabilized).
Matrix softmax(const Matrix& logits);

/// Row-wise log-softmax (numerically stabilized).
Matrix log_softmax(const Matrix& logits);

/// Mean cross-entropy of `logits` against integer class `targets`
/// (one per row). Returns {loss, dLoss/dLogits}.
struct LossResult {
  double loss = 0.0;
  Matrix grad_logits;
};

LossResult cross_entropy(const Matrix& logits, std::span<const int> targets);

/// Policy-gradient surrogate: loss = -mean_i(advantage_i * log pi(a_i|s_i))
/// with the standard softmax-gradient shortcut. Returns {loss, grad}.
LossResult policy_gradient(const Matrix& logits, std::span<const int> actions,
                           std::span<const double> advantages);

/// Mean squared error against per-row scalar targets (logits is Nx1).
LossResult mse(const Matrix& predictions, std::span<const double> targets);

/// Entropy of each softmax row, averaged (exploration diagnostics / bonus).
double mean_entropy(const Matrix& logits);

}  // namespace mlfs::nn
