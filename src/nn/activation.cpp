#include "nn/activation.hpp"

#include <cmath>

namespace mlfs::nn {

Matrix Relu::forward(const Matrix& input) {
  last_input_ = input;
  Matrix out = input;
  out.apply([](double v) { return v > 0.0 ? v : 0.0; });
  return out;
}

Matrix Relu::backward(const Matrix& grad_output) {
  MLFS_EXPECT(grad_output.same_shape(last_input_));
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (last_input_.raw()[i] <= 0.0) grad.raw()[i] = 0.0;
  }
  return grad;
}

Matrix Tanh::forward(const Matrix& input) {
  Matrix out = input;
  out.apply([](double v) { return std::tanh(v); });
  last_output_ = out;
  return out;
}

Matrix Tanh::backward(const Matrix& grad_output) {
  MLFS_EXPECT(grad_output.same_shape(last_output_));
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double y = last_output_.raw()[i];
    grad.raw()[i] *= 1.0 - y * y;
  }
  return grad;
}

}  // namespace mlfs::nn
