#include "nn/mlp.hpp"

#include <istream>
#include <ostream>
#include <utility>

#include "common/binio.hpp"

namespace mlfs::nn {

Mlp::Mlp(const std::vector<std::size_t>& sizes, Activation hidden_activation, Rng& rng)
    : sizes_(sizes) {
  MLFS_EXPECT(sizes.size() >= 2);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.push_back(std::make_unique<Dense>(sizes[i], sizes[i + 1], rng));
    const bool is_last = i + 2 == sizes.size();
    if (!is_last) {
      if (hidden_activation == Activation::Relu) {
        layers_.push_back(std::make_unique<Relu>());
      } else {
        layers_.push_back(std::make_unique<Tanh>());
      }
    }
  }
}

Matrix Mlp::forward(const Matrix& input) {
  MLFS_EXPECT(input.cols() == sizes_.front());
  Matrix x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

void Mlp::backward(const Matrix& grad_logits) {
  Matrix grad = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = (*it)->backward(grad);
}

void Mlp::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

std::vector<Matrix*> Mlp::params() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_)
    for (Matrix* p : layer->params()) out.push_back(p);
  return out;
}

std::vector<Matrix*> Mlp::grads() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_)
    for (Matrix* g : layer->grads()) out.push_back(g);
  return out;
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    // params() is non-const by design (optimizer mutates); cast is local.
    for (Matrix* p : const_cast<Layer&>(*layer).params()) n += p->size();
  }
  return n;
}

void Mlp::save(std::ostream& os) const {
  os << sizes_.size() << '\n';
  for (const auto s : sizes_) os << s << ' ';
  os << '\n';
  for (const auto& layer : layers_) {
    for (Matrix* p : const_cast<Layer&>(*layer).params()) write_matrix(os, *p);
  }
}

void Mlp::load(std::istream& is) {
  std::size_t n = 0;
  is >> n;
  MLFS_EXPECT(n == sizes_.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t s = 0;
    is >> s;
    MLFS_EXPECT(s == sizes_[i]);
  }
  for (auto& layer : layers_) {
    for (Matrix* p : layer->params()) {
      Matrix loaded = read_matrix(is);
      MLFS_EXPECT(loaded.same_shape(*p));
      *p = std::move(loaded);
    }
  }
}

void Mlp::save_state(io::BinWriter& w) const {
  for (const auto& layer : layers_) {
    for (Matrix* p : const_cast<Layer&>(*layer).params()) w.vec_f64(p->raw());
  }
}

void Mlp::restore_state(io::BinReader& r) {
  for (auto& layer : layers_) {
    for (Matrix* p : layer->params()) {
      std::vector<double> data = r.vec_f64();
      MLFS_EXPECT(data.size() == p->size());
      p->raw() = std::move(data);
    }
  }
}

void Mlp::copy_params_from(const Mlp& other) {
  MLFS_EXPECT(sizes_ == other.sizes_);
  auto& self = *this;
  auto& src = const_cast<Mlp&>(other);
  auto dst_params = self.params();
  auto src_params = src.params();
  MLFS_EXPECT(dst_params.size() == src_params.size());
  for (std::size_t i = 0; i < dst_params.size(); ++i) *dst_params[i] = *src_params[i];
}

}  // namespace mlfs::nn
