#include "nn/dense.hpp"

namespace mlfs::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : weights_(Matrix::glorot(in_features, out_features, rng)),
      bias_(1, out_features),
      grad_weights_(in_features, out_features),
      grad_bias_(1, out_features) {}

Matrix Dense::forward(const Matrix& input) {
  MLFS_EXPECT(input.cols() == weights_.rows());
  last_input_ = input;
  Matrix out = input.matmul(weights_);
  out.add_row_broadcast(bias_);
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  MLFS_EXPECT(grad_output.rows() == last_input_.rows());
  MLFS_EXPECT(grad_output.cols() == weights_.cols());
  grad_weights_ += last_input_.transposed().matmul(grad_output);
  grad_bias_ += grad_output.column_sums();
  return grad_output.matmul(weights_.transposed());
}

}  // namespace mlfs::nn
