#include "nn/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>

namespace mlfs::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::row(const std::vector<double>& values) {
  Matrix m(1, values.size());
  m.data_ = values;
  return m;
}

Matrix Matrix::glorot(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.data_) v = rng.uniform(-limit, limit);
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  MLFS_EXPECT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  MLFS_EXPECT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::matmul(const Matrix& other) const {
  MLFS_EXPECT(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order: streams through `other` row-wise for cache locality.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.data_[j * rows_ + i] = data_[i * cols_ + j];
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  MLFS_EXPECT(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  MLFS_EXPECT(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix& Matrix::add_row_broadcast(const Matrix& row_vec) {
  MLFS_EXPECT(row_vec.rows_ == 1 && row_vec.cols_ == cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) data_[i * cols_ + j] += row_vec.data_[j];
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  MLFS_EXPECT(same_shape(other));
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix& Matrix::apply(const std::function<double(double)>& f) {
  for (auto& v : data_) v = f(v);
  return *this;
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.data_[j] += data_[i * cols_ + j];
  return out;
}

void Matrix::zero() {
  for (auto& v : data_) v = 0.0;
}

double Matrix::norm() const {
  double s = 0.0;
  for (const double v : data_) s += v * v;
  return std::sqrt(s);
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs += rhs;
  return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
  lhs -= rhs;
  return lhs;
}

Matrix operator*(Matrix lhs, double scalar) {
  lhs *= scalar;
  return lhs;
}

void write_matrix(std::ostream& os, const Matrix& m) {
  os << m.rows() << ' ' << m.cols() << '\n' << std::setprecision(17);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j) os << ' ';
      os << m.at(i, j);
    }
    os << '\n';
  }
}

Matrix read_matrix(std::istream& is) {
  std::size_t rows = 0;
  std::size_t cols = 0;
  is >> rows >> cols;
  MLFS_EXPECT(static_cast<bool>(is));
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) is >> m.at(i, j);
  MLFS_EXPECT(static_cast<bool>(is));
  return m;
}

}  // namespace mlfs::nn
