#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

namespace mlfs::nn {

Matrix softmax(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double maxv = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < out.cols(); ++j) maxv = std::max(maxv, out.at(i, j));
    double sum = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j) {
      out.at(i, j) = std::exp(out.at(i, j) - maxv);
      sum += out.at(i, j);
    }
    for (std::size_t j = 0; j < out.cols(); ++j) out.at(i, j) /= sum;
  }
  return out;
}

Matrix log_softmax(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double maxv = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < out.cols(); ++j) maxv = std::max(maxv, out.at(i, j));
    double sum = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j) sum += std::exp(out.at(i, j) - maxv);
    const double log_z = maxv + std::log(sum);
    for (std::size_t j = 0; j < out.cols(); ++j) out.at(i, j) -= log_z;
  }
  return out;
}

LossResult cross_entropy(const Matrix& logits, std::span<const int> targets) {
  MLFS_EXPECT(logits.rows() == targets.size());
  const Matrix probs = softmax(logits);
  const auto n = static_cast<double>(logits.rows());
  LossResult result;
  result.grad_logits = probs;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const auto target = static_cast<std::size_t>(targets[i]);
    MLFS_EXPECT(target < logits.cols());
    result.loss -= std::log(std::max(probs.at(i, target), 1e-12));
    result.grad_logits.at(i, target) -= 1.0;
  }
  result.loss /= n;
  result.grad_logits *= 1.0 / n;
  return result;
}

LossResult policy_gradient(const Matrix& logits, std::span<const int> actions,
                           std::span<const double> advantages) {
  MLFS_EXPECT(logits.rows() == actions.size());
  MLFS_EXPECT(logits.rows() == advantages.size());
  const Matrix probs = softmax(logits);
  const auto n = static_cast<double>(logits.rows());
  LossResult result;
  result.grad_logits = Matrix(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const auto action = static_cast<std::size_t>(actions[i]);
    MLFS_EXPECT(action < logits.cols());
    const double adv = advantages[i];
    result.loss -= adv * std::log(std::max(probs.at(i, action), 1e-12));
    // d(-adv * log pi(a))/dlogit_j = adv * (pi_j - [j == a])
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      result.grad_logits.at(i, j) = adv * probs.at(i, j);
    }
    result.grad_logits.at(i, action) -= adv;
  }
  result.loss /= n;
  result.grad_logits *= 1.0 / n;
  return result;
}

LossResult mse(const Matrix& predictions, std::span<const double> targets) {
  MLFS_EXPECT(predictions.cols() == 1);
  MLFS_EXPECT(predictions.rows() == targets.size());
  const auto n = static_cast<double>(predictions.rows());
  LossResult result;
  result.grad_logits = Matrix(predictions.rows(), 1);
  for (std::size_t i = 0; i < predictions.rows(); ++i) {
    const double diff = predictions.at(i, 0) - targets[i];
    result.loss += diff * diff;
    result.grad_logits.at(i, 0) = 2.0 * diff / n;
  }
  result.loss /= n;
  return result;
}

double mean_entropy(const Matrix& logits) {
  const Matrix probs = softmax(logits);
  double total = 0.0;
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    for (std::size_t j = 0; j < probs.cols(); ++j) {
      const double p = probs.at(i, j);
      if (p > 1e-12) total -= p * std::log(p);
    }
  }
  return probs.rows() == 0 ? 0.0 : total / static_cast<double>(probs.rows());
}

}  // namespace mlfs::nn
