// Multi-layer perceptron: the function approximator behind both the MLF-RL
// policy/value networks and the baseline RL scheduler. Dense layers with a
// configurable hidden activation; the output is raw logits (loss heads live
// in loss.hpp).
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/layer.hpp"

namespace mlfs::io {
class BinWriter;
class BinReader;
}  // namespace mlfs::io

namespace mlfs::nn {

enum class Activation { Relu, Tanh };

/// Feed-forward network: Dense -> act -> ... -> Dense (logits out).
class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}; at least {in, out}.
  Mlp(const std::vector<std::size_t>& sizes, Activation hidden_activation, Rng& rng);

  /// Forward pass for a batch (rows = samples), returns logits.
  Matrix forward(const Matrix& input);

  /// Backprop from dLoss/dLogits; accumulates parameter gradients.
  void backward(const Matrix& grad_logits);

  void zero_grads();

  /// Flattened parameter/gradient views across all layers.
  std::vector<Matrix*> params();
  std::vector<Matrix*> grads();

  std::size_t in_features() const { return sizes_.front(); }
  std::size_t out_features() const { return sizes_.back(); }
  std::size_t parameter_count() const;

  /// Text checkpointing of all parameters (architecture must match on load).
  void save(std::ostream& os) const;
  void load(std::istream& is);

  /// Bit-exact binary parameter round-trip for engine snapshots; the text
  /// save()/load() pair stays the human-inspectable checkpoint format.
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

  /// Copies parameters from another MLP with identical architecture.
  void copy_params_from(const Mlp& other);

 private:
  std::vector<std::size_t> sizes_;
  std::vector<LayerPtr> layers_;
};

}  // namespace mlfs::nn
