// Dense row-major matrix for the from-scratch neural-net substrate.
// Deliberately small: exactly the operations the MLP and policy-gradient
// code need, each one tested against hand values and finite differences.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace mlfs::nn {

/// Row-major dense matrix of doubles. A 1xN matrix doubles as a row vector.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds a 1xN row vector from values.
  static Matrix row(const std::vector<double>& values);

  /// He/Glorot-style scaled uniform init for a dense layer's weights.
  static Matrix glorot(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  /// this @ other. Requires cols() == other.rows().
  Matrix matmul(const Matrix& other) const;

  /// this^T as a new matrix.
  Matrix transposed() const;

  /// Elementwise in-place ops; shapes must match exactly.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Adds a 1xC row vector to every row (bias broadcast).
  Matrix& add_row_broadcast(const Matrix& row_vec);

  /// Elementwise product (Hadamard) as a new matrix.
  Matrix hadamard(const Matrix& other) const;

  /// Applies f to every element in place.
  Matrix& apply(const std::function<double(double)>& f);

  /// Column-wise sum as a 1xC matrix (bias gradient).
  Matrix column_sums() const;

  /// Sets every element to zero.
  void zero();

  /// Frobenius norm.
  double norm() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, double scalar);

/// Text serialization: "rows cols v00 v01 ...". Round-trips exactly enough
/// for checkpointing policies (uses max_digits10).
void write_matrix(std::ostream& os, const Matrix& m);
Matrix read_matrix(std::istream& is);

}  // namespace mlfs::nn
