// Gradient-descent optimizers over a flat list of parameter matrices.
#pragma once

#include <vector>

#include "nn/matrix.hpp"

namespace mlfs::io {
class BinWriter;
class BinReader;
}  // namespace mlfs::io

namespace mlfs::nn {

/// Optimizer interface: step() applies the accumulated gradients to the
/// bound parameters; callers zero the gradients afterwards.
class Optimizer {
 public:
  Optimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads);
  virtual ~Optimizer() = default;

  /// One update step. If `max_grad_norm` > 0 the global gradient norm is
  /// clipped first (standard for policy gradients).
  virtual void step() = 0;

  void set_max_grad_norm(double v) { max_grad_norm_ = v; }

 protected:
  /// Applies global-norm clipping; returns the pre-clip norm.
  double clip_gradients();

  std::vector<Matrix*> params_;
  std::vector<Matrix*> grads_;
  double max_grad_norm_ = 0.0;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Matrix*> params, std::vector<Matrix*> grads, double lr, double momentum = 0.0);
  void step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads, double lr,
       double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);
  void step() override;

  /// Snapshot support: step count and the first/second-moment accumulators,
  /// bit-exact (hyperparameters and parameter bindings are rebuilt by the
  /// owning agent's constructor).
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace mlfs::nn
