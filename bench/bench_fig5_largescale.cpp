// Figure 5 — "Overall performance in large-scale simulation" (§4.2.1).
//
// The paper drives 550 servers / 2474 GPUs with {0.5,1,2,3,4} × 117,325
// Philly-trace jobs over 18 weeks. Full size is hours of wall-clock, so
// this harness runs a linearly scaled configuration that preserves the
// jobs-per-GPU-per-week load and the x-axis ratios (see EXPERIMENTS.md);
// pass --scale to change the fraction (0.02 ~ 11 servers by default;
// --scale 1.0 is the paper's full size).
//
// Usage: bench_fig5_largescale [--scale F] [--quick] [--csv-dir DIR] [--threads N]
#include <cstring>
#include <iostream>
#include <string>

#include "exp/runner.hpp"

namespace {
using namespace mlfs;
double avg_jct(const RunMetrics& m) { return m.average_jct_minutes(); }
double deadline_ratio(const RunMetrics& m) { return m.deadline_ratio; }
double avg_wait(const RunMetrics& m) { return m.average_waiting_seconds(); }
double avg_accuracy(const RunMetrics& m) { return m.average_accuracy; }
double accuracy_ratio(const RunMetrics& m) { return m.accuracy_ratio; }
double bandwidth(const RunMetrics& m) { return m.bandwidth_tb; }
double overhead(const RunMetrics& m) { return m.sched_overhead_ms; }
double makespan(const RunMetrics& m) { return m.makespan_hours; }
}  // namespace

int main(int argc, char** argv) {
  using namespace mlfs;
  double scale = 0.02;
  bool quick = false;
  std::string csv_dir;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) scale = std::stod(argv[++i]);
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  exp::Scenario scenario = exp::largescale_scenario(scale);
  if (quick) scenario.sweep_multipliers = {0.5, 2.0, 4.0};

  std::cout << "=== Figure 5: large-scale simulation at scale " << scale << " ===\n"
            << "cluster: " << scenario.cluster.server_count << " servers x "
            << scenario.cluster.gpus_per_server << " GPUs ("
            << scenario.cluster.server_count * static_cast<std::size_t>(
                   scenario.cluster.gpus_per_server)
            << " GPUs ~ " << 2474.0 * scale << " of the paper's 2474); base "
            << scenario.trace.num_jobs << " jobs over "
            << scenario.trace.duration_hours / 24.0 / 7.0 << " weeks\n\n";

  const auto schedulers = exp::paper_scheduler_names();
  exp::RunOptions options;
  options.threads = threads;
  const auto results = exp::run_sweep(scenario, schedulers, {}, options);
  std::cout << '\n';

  const auto counts = exp::sweep_job_counts(scenario);
  std::size_t base_index = counts.size() / 2;
  const std::vector<double> breakpoints = {1, 10, 50, 100, 200, 500, 1000, 5000, 20000};
  Table cdf = exp::cdf_table("Fig 5(a): CDF of jobs vs JCT (minutes), " +
                                 std::to_string(counts[base_index]) + " jobs",
                             schedulers, results, base_index, breakpoints);
  cdf.render(std::cout);
  std::cout << '\n';

  struct Panel {
    const char* title;
    double (*extract)(const RunMetrics&);
    int precision;
    const char* csv;
  };
  const Panel panels[] = {
      {"Fig 5(b): average JCT (minutes)", avg_jct, 1, "fig5b_avg_jct.csv"},
      {"Fig 5(c): job deadline guarantee ratio", deadline_ratio, 3, "fig5c_deadline.csv"},
      {"Fig 5(d): average job waiting time (seconds)", avg_wait, 0, "fig5d_waiting.csv"},
      {"Fig 5(e): average accuracy (by deadline)", avg_accuracy, 3, "fig5e_accuracy.csv"},
      {"Fig 5(f): accuracy guarantee ratio", accuracy_ratio, 3, "fig5f_accuracy_ratio.csv"},
      {"Fig 5(g): bandwidth cost (TB)", bandwidth, 2, "fig5g_bandwidth.csv"},
      {"Fig 5(h): scheduler time overhead (ms)", overhead, 3, "fig5h_overhead.csv"},
      {"§4.2.1: makespan (hours)", makespan, 1, "fig5_makespan.csv"},
  };
  for (const Panel& panel : panels) {
    Table table = exp::panel_table(panel.title, scenario, schedulers, results, panel.extract,
                                   panel.precision);
    table.render(std::cout);
    std::cout << '\n';
    if (!csv_dir.empty()) exp::write_csv(table, csv_dir + "/" + panel.csv);
  }

  std::cout << "expected shape: same ordering as Figure 4 (the paper reports matching\n"
               "trends between real experiments and simulation).\n";
  return 0;
}
