// Parallel experiment-runner benchmark + determinism gate.
//
// Runs the Fig. 4-sized sweep (testbed scenario × the paper's scheduler
// legend) twice through exp::run_batch — once serial (threads = 1), once
// on the pool (--threads, default 4) — and checks every RunMetrics pair
// with deterministic_equal: the parallel runner must be *bitwise*
// identical to the serial loop on every simulation-derived field (only
// sched_overhead_ms, a wall-clock measurement, is excluded; see
// sim/metrics.hpp). Exits 1 on any divergence, so CI (including the TSan
// job) can use this binary as the parallel==serial proof.
//
// Emits BENCH_parallel_runner.json with both wall-clocks, the speedup, and
// the host's hardware concurrency (the speedup ceiling: a 2-core box tops
// out near 2x no matter the pool width). The target is >= 2x at 4 threads
// on a >= 4-core host.
//
// Usage: bench_parallel_runner [--smoke|--full] [--threads N] [--out FILE]
//   --smoke    small smoke-scenario sweep (CI / TSan; seconds, not minutes)
//   --full     all five Fig. 4 sweep points (default: the 155/310/620-job
//              points — same shape, bounded wall-clock)
//   --threads  pool width for the parallel pass (default 4; 0 = hardware)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace mlfs;
  bool smoke = false;
  bool full = false;
  unsigned threads = 4;
  std::string out_file = "BENCH_parallel_runner.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_file = argv[++i];
  }
  const unsigned pool = exp::resolve_threads(threads);

  // The Fig. 4 shape: sweep points outer, schedulers inner — exactly the
  // request order run_sweep uses, so this times the real workload.
  exp::Scenario scenario = smoke ? exp::smoke_scenario() : exp::testbed_scenario();
  if (smoke) scenario.sweep_multipliers = {1.0, 2.0};
  if (!smoke && !full) scenario.sweep_multipliers = {0.25, 0.5, 1.0};
  const std::vector<std::string> schedulers =
      smoke ? std::vector<std::string>{"MLFS", "MLF-H", "Tiresias", "SLAQ"}
            : exp::paper_scheduler_names();
  // Largest points first: the pool drains big runs while small ones fill
  // the gaps, so the tail run does not serialize the whole pass. (Execution
  // order is irrelevant to results — they land by index either way.)
  std::vector<std::size_t> counts = exp::sweep_job_counts(scenario);
  std::sort(counts.rbegin(), counts.rend());
  std::vector<exp::RunRequest> requests;
  for (const std::size_t jobs : counts) {
    for (const std::string& name : schedulers) {
      requests.push_back(exp::make_request(scenario, name, jobs));
    }
  }

  std::cout << "=== Parallel runner: serial vs " << pool << " threads, "
            << requests.size() << " runs (" << scenario.name << ") ===\n";

  using Clock = std::chrono::steady_clock;
  exp::RunOptions serial_options;
  serial_options.threads = 1;
  serial_options.verbose = false;
  const auto serial_start = Clock::now();
  const std::vector<RunMetrics> serial = exp::run_batch(requests, serial_options);
  const double serial_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - serial_start).count();
  std::cout << "  serial  : " << serial_ms << " ms\n";

  exp::RunOptions parallel_options;
  parallel_options.threads = threads;
  parallel_options.verbose = false;
  const auto parallel_start = Clock::now();
  const std::vector<RunMetrics> parallel = exp::run_batch(requests, parallel_options);
  const double parallel_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - parallel_start).count();
  std::cout << "  parallel: " << parallel_ms << " ms (" << pool << " threads)\n";

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!deterministic_equal(serial[i], parallel[i])) {
      ++mismatches;
      std::cerr << "MISMATCH at run " << i << " (" << requests[i].scheduler << " @ "
                << requests[i].label << ")\n";
    }
  }
  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  std::cout << "  speedup : " << speedup << "x, deterministic="
            << (mismatches == 0 ? "true" : "false") << '\n';

  std::ofstream json(out_file);
  json << "{\n  \"benchmark\": \"parallel_runner\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"runs\": " << requests.size() << ",\n"
       << "  \"threads\": " << pool << ",\n"
       << "  \"hardware_concurrency\": " << exp::resolve_threads(0) << ",\n"
       << "  \"serial_ms\": " << serial_ms << ",\n"
       << "  \"parallel_ms\": " << parallel_ms << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"deterministic\": " << (mismatches == 0 ? "true" : "false") << "\n}\n";
  std::cout << "wrote " << out_file << '\n';

  if (mismatches != 0) {
    std::cerr << "FAIL: parallel results diverged from serial on " << mismatches
              << " of " << requests.size() << " runs\n";
    return 1;
  }
  return 0;
}
