// Parameter-sensitivity study — the paper's §6 lists "the sensitivity of
// the parameters in MLFS" as future work; DESIGN.md calls out the design
// choices this sweeps. One table per knob, each row a value, columns the
// paper's §4.1 metrics, on a single loaded testbed point.
//
// Usage: bench_sensitivity [--jobs N] [--csv-dir DIR]
#include <cstring>
#include <iostream>

#include "exp/runner.hpp"

namespace {

using namespace mlfs;

RunMetrics run_config(const exp::Scenario& scenario, std::size_t jobs,
                      const core::MlfsConfig& config) {
  return exp::run_experiment(scenario, "MLFS", jobs, config);
}

void emit(Table& table, const std::string& label, const RunMetrics& m) {
  table.add_row(label, {m.average_jct_minutes(), m.deadline_ratio, m.average_accuracy,
                        m.accuracy_ratio, m.bandwidth_tb},
                3);
}

std::vector<std::string> header() {
  return {"value", "avg JCT (min)", "deadline ratio", "avg accuracy", "accuracy ratio",
          "bandwidth (TB)"};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlfs;
  std::size_t jobs = 1240;
  std::string csv_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) jobs = std::stoul(argv[++i]);
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
  }
  const exp::Scenario scenario = exp::testbed_scenario();
  std::cout << "=== Parameter sensitivity (MLFS, " << jobs << " jobs, 80 GPUs) ===\n\n";

  {
    Table t("alpha — ML-feature vs computation-feature blend (Eq. 6)");
    t.set_header(header());
    for (const double alpha : {0.0, 0.15, 0.3, 0.6, 1.0}) {
      core::MlfsConfig config;
      config.priority.alpha = alpha;
      emit(t, "alpha=" + format_double(alpha, 2), run_config(scenario, jobs, config));
    }
    t.render(std::cout);
    std::cout << '\n';
    if (!csv_dir.empty()) exp::write_csv(t, csv_dir + "/sensitivity_alpha.csv");
  }
  {
    Table t("gamma — dependency discount (Eqs. 3/5)");
    t.set_header(header());
    for (const double gamma : {0.2, 0.5, 0.8, 0.95}) {
      core::MlfsConfig config;
      config.priority.gamma = gamma;
      emit(t, "gamma=" + format_double(gamma, 2), run_config(scenario, jobs, config));
    }
    t.render(std::cout);
    std::cout << '\n';
    if (!csv_dir.empty()) exp::write_csv(t, csv_dir + "/sensitivity_gamma.csv");
  }
  {
    Table t("p_s — migration-candidate fraction (§3.3.3)");
    t.set_header(header());
    for (const double ps : {0.05, 0.10, 0.30, 1.0}) {
      core::MlfsConfig config;
      config.migration.ps = ps;
      emit(t, "ps=" + format_double(ps, 2), run_config(scenario, jobs, config));
    }
    t.render(std::cout);
    std::cout << '\n';
    if (!csv_dir.empty()) exp::write_csv(t, csv_dir + "/sensitivity_ps.csv");
  }
  {
    Table t("h_s — cluster overload threshold for MLF-C (§3.5)");
    t.set_header(header());
    for (const double hs : {0.5, 0.7, 0.9, 1.1}) {
      core::MlfsConfig config;
      config.load_control.hs = hs;
      emit(t, "hs=" + format_double(hs, 2), run_config(scenario, jobs, config));
    }
    t.render(std::cout);
    std::cout << '\n';
    if (!csv_dir.empty()) exp::write_csv(t, csv_dir + "/sensitivity_hs.csv");
  }

  std::cout << "interpretation: MLFS is robust across alpha/gamma (priorities reorder\n"
               "within jobs more than across them); p_s mainly trades migration\n"
               "responsiveness vs disturbing high-priority tasks; h_s gates how early\n"
               "MLF-C starts shedding iterations.\n";
  return 0;
}
