// Parameter-sensitivity study — the paper's §6 lists "the sensitivity of
// the parameters in MLFS" as future work; DESIGN.md calls out the design
// choices this sweeps. One table per knob, each row a value, columns the
// paper's §4.1 metrics, on a single loaded testbed point. All runs go
// through the shared experiment runner (one batch across every knob), so
// --threads parallelizes the whole study without changing any table.
//
// Usage: bench_sensitivity [--jobs N] [--csv-dir DIR] [--threads N]
#include <cstring>
#include <iostream>
#include <utility>

#include "exp/runner.hpp"

namespace {

using namespace mlfs;

void emit(Table& table, const std::string& label, const RunMetrics& m) {
  table.add_row(label, {m.average_jct_minutes(), m.deadline_ratio, m.average_accuracy,
                        m.accuracy_ratio, m.bandwidth_tb},
                3);
}

std::vector<std::string> header() {
  return {"value", "avg JCT (min)", "deadline ratio", "avg accuracy", "accuracy ratio",
          "bandwidth (TB)"};
}

/// One knob: a titled group of (row label, config) cases.
struct Study {
  std::string title;
  std::string csv;
  std::vector<std::pair<std::string, core::MlfsConfig>> cases;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mlfs;
  std::size_t jobs = 1240;
  std::string csv_dir;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) jobs = std::stoul(argv[++i]);
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }
  const exp::Scenario scenario = exp::testbed_scenario();
  std::cout << "=== Parameter sensitivity (MLFS, " << jobs << " jobs, 80 GPUs) ===\n\n";

  std::vector<Study> studies;
  {
    Study s{"alpha — ML-feature vs computation-feature blend (Eq. 6)",
            "sensitivity_alpha.csv", {}};
    for (const double alpha : {0.0, 0.15, 0.3, 0.6, 1.0}) {
      core::MlfsConfig config;
      config.priority.alpha = alpha;
      s.cases.emplace_back("alpha=" + format_double(alpha, 2), config);
    }
    studies.push_back(std::move(s));
  }
  {
    Study s{"gamma — dependency discount (Eqs. 3/5)", "sensitivity_gamma.csv", {}};
    for (const double gamma : {0.2, 0.5, 0.8, 0.95}) {
      core::MlfsConfig config;
      config.priority.gamma = gamma;
      s.cases.emplace_back("gamma=" + format_double(gamma, 2), config);
    }
    studies.push_back(std::move(s));
  }
  {
    Study s{"p_s — migration-candidate fraction (§3.3.3)", "sensitivity_ps.csv", {}};
    for (const double ps : {0.05, 0.10, 0.30, 1.0}) {
      core::MlfsConfig config;
      config.migration.ps = ps;
      s.cases.emplace_back("ps=" + format_double(ps, 2), config);
    }
    studies.push_back(std::move(s));
  }
  {
    Study s{"h_s — cluster overload threshold for MLF-C (§3.5)", "sensitivity_hs.csv", {}};
    for (const double hs : {0.5, 0.7, 0.9, 1.1}) {
      core::MlfsConfig config;
      config.load_control.hs = hs;
      s.cases.emplace_back("hs=" + format_double(hs, 2), config);
    }
    studies.push_back(std::move(s));
  }

  // One batch over every knob value; results land by index.
  std::vector<exp::RunRequest> requests;
  for (const Study& s : studies) {
    for (const auto& [label, config] : s.cases) {
      exp::RunRequest request = exp::make_request(scenario, "MLFS", jobs, config);
      request.label = label;
      requests.push_back(std::move(request));
    }
  }
  exp::RunOptions options;
  options.threads = threads;
  options.verbose = false;
  const std::vector<RunMetrics> runs = exp::run_batch(requests, options);

  std::size_t index = 0;
  for (const Study& s : studies) {
    Table t(s.title);
    t.set_header(header());
    for (const auto& [label, config] : s.cases) emit(t, label, runs[index++]);
    t.render(std::cout);
    std::cout << '\n';
    if (!csv_dir.empty()) exp::write_csv(t, csv_dir + "/" + s.csv);
  }

  std::cout << "interpretation: MLFS is robust across alpha/gamma (priorities reorder\n"
               "within jobs more than across them); p_s mainly trades migration\n"
               "responsiveness vs disturbing high-priority tasks; h_s gates how early\n"
               "MLF-C starts shedding iterations.\n";
  return 0;
}
