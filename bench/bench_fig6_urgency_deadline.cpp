// Figure 6 — "Urgency and deadline consideration" (§4.2.2).
//
// Left series: deadline guarantee ratio of *urgent* jobs (urgency > 8 of
// [1,10]) with and without the urgency coefficient L_J in Eq. 2.
// Right series: overall job deadline guarantee ratio with and without the
// deadline term in Eq. 4. Both on the Fig. 4 testbed sweep with MLF-H.
//
// Usage: bench_fig6_urgency_deadline [--quick] [--csv-dir DIR] [--threads N]
#include <cstring>
#include <iostream>

#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace mlfs;
  bool quick = false;
  std::string csv_dir;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  exp::Scenario scenario = exp::testbed_scenario();
  if (quick) scenario.sweep_multipliers = {0.25, 1.0, 3.0};
  const auto counts = exp::sweep_job_counts(scenario);

  std::cout << "=== Figure 6: urgency and deadline consideration (MLF-H) ===\n\n";

  core::MlfsConfig with_all;
  with_all.heuristic_only = true;
  core::MlfsConfig no_urgency = with_all;
  no_urgency.priority.use_urgency = false;
  core::MlfsConfig no_deadline = with_all;
  no_deadline.priority.use_deadline_term = false;

  Table urgent("Fig 6 (left): urgent-job deadline guarantee ratio (urgency > 8)");
  Table overall("Fig 6 (right): job deadline guarantee ratio");
  std::vector<std::string> header = {"variant"};
  for (const std::size_t n : counts) header.push_back(std::to_string(n) + " jobs");
  urgent.set_header(header);
  overall.set_header(header);

  // Shared runner: three ablation variants per sweep point, results placed
  // by index (identical for any --threads).
  std::vector<exp::RunRequest> requests;
  for (const std::size_t jobs : counts) {
    requests.push_back(exp::make_request(scenario, "MLF-H", jobs, with_all));
    requests.push_back(exp::make_request(scenario, "MLF-H", jobs, no_urgency));
    requests.push_back(exp::make_request(scenario, "MLF-H", jobs, no_deadline));
  }
  exp::RunOptions options;
  options.threads = threads;
  options.verbose = false;
  const std::vector<RunMetrics> runs = exp::run_batch(requests, options);

  std::vector<double> urgent_with, urgent_without, overall_with, overall_without;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const RunMetrics& with_m = runs[3 * i];
    const RunMetrics& no_urg = runs[3 * i + 1];
    const RunMetrics& no_ddl = runs[3 * i + 2];
    std::cout << "  [n=" << counts[i] << "] w/ all: " << with_m.summary() << '\n';
    urgent_with.push_back(with_m.urgent_deadline_ratio);
    urgent_without.push_back(no_urg.urgent_deadline_ratio);
    overall_with.push_back(with_m.deadline_ratio);
    overall_without.push_back(no_ddl.deadline_ratio);
  }
  std::cout << '\n';
  urgent.add_row("w/ urgency (Eq.2)", urgent_with, 3);
  urgent.add_row("w/o urgency", urgent_without, 3);
  overall.add_row("w/ deadline (Eq.4)", overall_with, 3);
  overall.add_row("w/o deadline", overall_without, 3);
  urgent.render(std::cout);
  std::cout << '\n';
  overall.render(std::cout);

  if (!csv_dir.empty()) {
    exp::write_csv(urgent, csv_dir + "/fig6_urgency.csv");
    exp::write_csv(overall, csv_dir + "/fig6_deadline.csv");
  }
  std::cout << "\nexpected shape (paper): urgency consideration improves the urgent-job\n"
               "deadline ratio by 22-30%; deadline consideration improves the overall\n"
               "deadline ratio by 13-25%.\n";
  return 0;
}
