// Figure 8 — "Effectiveness of task migration" (§4.2.2).
//
// (a) number of server overload occurrences and bandwidth cost,
// (b) average accuracy (by deadline) and average JCT,
// each with and without MLF-H's task-migration component (§3.3.3), on the
// Fig. 4 testbed sweep.
//
// Usage: bench_fig8_migration [--quick] [--csv-dir DIR] [--threads N]
#include <cstring>
#include <iostream>

#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace mlfs;
  bool quick = false;
  std::string csv_dir;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  exp::Scenario scenario = exp::testbed_scenario();
  if (quick) scenario.sweep_multipliers = {0.25, 1.0, 3.0};
  const auto counts = exp::sweep_job_counts(scenario);

  std::cout << "=== Figure 8: effectiveness of task migration (MLF-H) ===\n\n";

  core::MlfsConfig with_mig;
  with_mig.heuristic_only = true;
  core::MlfsConfig without_mig = with_mig;
  without_mig.migration.enabled = false;

  Table panel_a("Fig 8(a): server overload occurrences and bandwidth cost (TB)");
  Table panel_b("Fig 8(b): average accuracy (by deadline) and average JCT (min)");
  std::vector<std::string> header = {"series"};
  for (const std::size_t n : counts) header.push_back(std::to_string(n) + " jobs");
  panel_a.set_header(header);
  panel_b.set_header(header);

  // Shared runner: both ablation variants per sweep point, results by index.
  std::vector<exp::RunRequest> requests;
  for (const std::size_t jobs : counts) {
    requests.push_back(exp::make_request(scenario, "MLF-H", jobs, with_mig));
    requests.push_back(exp::make_request(scenario, "MLF-H", jobs, without_mig));
  }
  exp::RunOptions options;
  options.threads = threads;
  options.verbose = false;
  const std::vector<RunMetrics> runs = exp::run_batch(requests, options);

  std::vector<double> ovl_w, ovl_wo, bw_w, bw_wo, acc_w, acc_wo, jct_w, jct_wo;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const RunMetrics& w = runs[2 * i];
    const RunMetrics& wo = runs[2 * i + 1];
    std::cout << "  [n=" << counts[i] << "] w/ migration: " << w.summary()
              << " overload=" << w.overload_occurrences << " migrations=" << w.migrations
              << '\n';
    ovl_w.push_back(static_cast<double>(w.overload_occurrences));
    ovl_wo.push_back(static_cast<double>(wo.overload_occurrences));
    bw_w.push_back(w.bandwidth_tb);
    bw_wo.push_back(wo.bandwidth_tb);
    acc_w.push_back(w.average_accuracy);
    acc_wo.push_back(wo.average_accuracy);
    jct_w.push_back(w.average_jct_minutes());
    jct_wo.push_back(wo.average_jct_minutes());
  }
  std::cout << '\n';
  panel_a.add_row("overload w/ migration", ovl_w, 0);
  panel_a.add_row("overload w/o migration", ovl_wo, 0);
  panel_a.add_row("bandwidth w/ migration", bw_w, 2);
  panel_a.add_row("bandwidth w/o migration", bw_wo, 2);
  panel_b.add_row("accuracy w/ migration", acc_w, 3);
  panel_b.add_row("accuracy w/o migration", acc_wo, 3);
  panel_b.add_row("JCT w/ migration", jct_w, 1);
  panel_b.add_row("JCT w/o migration", jct_wo, 1);
  panel_a.render(std::cout);
  std::cout << '\n';
  panel_b.render(std::cout);

  if (!csv_dir.empty()) {
    exp::write_csv(panel_a, csv_dir + "/fig8a_migration.csv");
    exp::write_csv(panel_b, csv_dir + "/fig8b_migration.csv");
  }
  std::cout << "\nexpected shape (paper): migration reduces overload occurrences by\n"
               "36-60% and JCT by 15-24%, raises accuracy by 8-10%, and costs 10-14%\n"
               "more bandwidth.\n";
  return 0;
}
