// Figure 9 — "System load reduction" (§4.2.2).
//
// Accuracy guarantee ratio and average JCT with and without MLF-C (§3.5),
// on the Fig. 4 testbed sweep. "With" is full MLFS (MLF-RL + MLF-C);
// "without" is the same scheduler with the load controller disabled.
//
// Usage: bench_fig9_loadcontrol [--quick] [--csv-dir DIR] [--threads N]
#include <cstring>
#include <iostream>

#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace mlfs;
  bool quick = false;
  std::string csv_dir;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  exp::Scenario scenario = exp::testbed_scenario();
  if (quick) scenario.sweep_multipliers = {0.25, 1.0, 3.0};
  const auto counts = exp::sweep_job_counts(scenario);

  std::cout << "=== Figure 9: system load reduction (MLF-C) ===\n\n";

  Table table("Fig 9: accuracy guarantee ratio and average JCT (min)");
  std::vector<std::string> header = {"series"};
  for (const std::size_t n : counts) header.push_back(std::to_string(n) + " jobs");
  table.set_header(header);

  // Shared runner: MLFS vs MLF-RL per sweep point, results by index.
  std::vector<exp::RunRequest> requests;
  for (const std::size_t jobs : counts) {
    requests.push_back(exp::make_request(scenario, "MLFS", jobs));
    requests.push_back(exp::make_request(scenario, "MLF-RL", jobs));
  }
  exp::RunOptions options;
  options.threads = threads;
  options.verbose = false;
  const std::vector<RunMetrics> runs = exp::run_batch(requests, options);

  std::vector<double> acc_w, acc_wo, jct_w, jct_wo;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const RunMetrics& with_c = runs[2 * i];
    const RunMetrics& without_c = runs[2 * i + 1];
    std::cout << "  [n=" << counts[i] << "] w/ MLF-C: " << with_c.summary()
              << " itersSaved=" << with_c.iterations_saved << '\n';
    acc_w.push_back(with_c.accuracy_ratio);
    acc_wo.push_back(without_c.accuracy_ratio);
    jct_w.push_back(with_c.average_jct_minutes());
    jct_wo.push_back(without_c.average_jct_minutes());
  }
  std::cout << '\n';
  table.add_row("accuracy-OK w/ MLF-C", acc_w, 3);
  table.add_row("accuracy-OK w/o MLF-C", acc_wo, 3);
  table.add_row("JCT w/ MLF-C", jct_w, 1);
  table.add_row("JCT w/o MLF-C", jct_wo, 1);
  table.render(std::cout);

  if (!csv_dir.empty()) exp::write_csv(table, csv_dir + "/fig9_loadcontrol.csv");
  std::cout << "\nexpected shape (paper): MLF-C improves the accuracy guarantee ratio\n"
               "by 17-23% and the average JCT by 28-42% (largest gains under the\n"
               "highest workload).\n";
  return 0;
}
