// Figure 7 — "Bandwidth consideration" (§4.2.2).
//
// Average JCT (left Y) and bandwidth cost (right Y) with and without the
// communication-volume dimension u_BW,V in the ideal-virtual-server match
// (§3.3.2), on the Fig. 4 testbed sweep with MLF-H.
//
// Usage: bench_fig7_bandwidth [--quick] [--csv-dir DIR] [--threads N]
#include <cstring>
#include <iostream>

#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace mlfs;
  bool quick = false;
  std::string csv_dir;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  exp::Scenario scenario = exp::testbed_scenario();
  if (quick) scenario.sweep_multipliers = {0.25, 1.0, 3.0};
  const auto counts = exp::sweep_job_counts(scenario);

  std::cout << "=== Figure 7: bandwidth consideration (MLF-H) ===\n\n";

  core::MlfsConfig with_bw;
  with_bw.heuristic_only = true;
  core::MlfsConfig without_bw = with_bw;
  without_bw.placement.use_bandwidth = false;

  Table table("Fig 7: average JCT (min) and bandwidth cost (TB)");
  std::vector<std::string> header = {"series"};
  for (const std::size_t n : counts) header.push_back(std::to_string(n) + " jobs");
  table.set_header(header);

  // Shared runner: both ablation variants per sweep point, results by index.
  std::vector<exp::RunRequest> requests;
  for (const std::size_t jobs : counts) {
    requests.push_back(exp::make_request(scenario, "MLF-H", jobs, with_bw));
    requests.push_back(exp::make_request(scenario, "MLF-H", jobs, without_bw));
  }
  exp::RunOptions options;
  options.threads = threads;
  options.verbose = false;
  const std::vector<RunMetrics> runs = exp::run_batch(requests, options);

  std::vector<double> jct_with, jct_without, bw_with, bw_without;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const RunMetrics& w = runs[2 * i];
    const RunMetrics& wo = runs[2 * i + 1];
    std::cout << "  [n=" << counts[i] << "] w/ bandwidth: " << w.summary() << '\n';
    jct_with.push_back(w.average_jct_minutes());
    jct_without.push_back(wo.average_jct_minutes());
    bw_with.push_back(w.bandwidth_tb);
    bw_without.push_back(wo.bandwidth_tb);
  }
  std::cout << '\n';
  table.add_row("JCT w/ bandwidth", jct_with, 1);
  table.add_row("JCT w/o bandwidth", jct_without, 1);
  table.add_row("BW  w/ bandwidth", bw_with, 2);
  table.add_row("BW  w/o bandwidth", bw_without, 2);
  table.render(std::cout);

  if (!csv_dir.empty()) exp::write_csv(table, csv_dir + "/fig7_bandwidth.csv");
  std::cout << "\nexpected shape (paper): the bandwidth consideration reduces JCT by\n"
               "5-15% and bandwidth cost by 20-35%.\n";
  return 0;
}
