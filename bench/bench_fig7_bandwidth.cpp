// Figure 7 — "Bandwidth consideration" (§4.2.2), extended with the
// link-contention study (DESIGN.md §5e).
//
// Phase 1: average JCT (left Y) and bandwidth cost (right Y) with and
// without the communication-volume dimension u_BW,V in the ideal-virtual-
// server match (§3.3.2), on the Fig. 4 testbed sweep with MLF-H.
//
// Phase 2: a network-bound mix — racked testbed, link contention on with a
// tight rack uplink, per-model duty cycles — comparing the CASSINI-style
// network-aware scheduler against the contention-oblivious baselines.
// Gated: Cassini must beat the best baseline on average JCT by the margin
// below, and the baselines must actually lose time to link sharing (the
// mix is network-bound, not a vacuous win). Emits BENCH_fig7_bandwidth.json
// and exits non-zero if a gate fails; CI runs --quick and archives it.
//
// Usage: bench_fig7_bandwidth [--quick] [--csv-dir DIR] [--threads N]
//                             [--out FILE]
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>

#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace mlfs;
  bool quick = false;
  std::string csv_dir;
  std::string out_file = "BENCH_fig7_bandwidth.json";
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_file = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  exp::Scenario scenario = exp::testbed_scenario();
  if (quick) scenario.sweep_multipliers = {0.25, 1.0, 3.0};
  const auto counts = exp::sweep_job_counts(scenario);

  std::cout << "=== Figure 7: bandwidth consideration (MLF-H) ===\n\n";

  core::MlfsConfig with_bw;
  with_bw.heuristic_only = true;
  core::MlfsConfig without_bw = with_bw;
  without_bw.placement.use_bandwidth = false;

  Table table("Fig 7: average JCT (min) and bandwidth cost (TB)");
  std::vector<std::string> header = {"series"};
  for (const std::size_t n : counts) header.push_back(std::to_string(n) + " jobs");
  table.set_header(header);

  // Shared runner: both ablation variants per sweep point, results by index.
  std::vector<exp::RunRequest> requests;
  for (const std::size_t jobs : counts) {
    requests.push_back(exp::make_request(scenario, "MLF-H", jobs, with_bw));
    requests.push_back(exp::make_request(scenario, "MLF-H", jobs, without_bw));
  }
  exp::RunOptions options;
  options.threads = threads;
  options.verbose = false;
  const std::vector<RunMetrics> runs = exp::run_batch(requests, options);

  std::vector<double> jct_with, jct_without, bw_with, bw_without;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const RunMetrics& w = runs[2 * i];
    const RunMetrics& wo = runs[2 * i + 1];
    std::cout << "  [n=" << counts[i] << "] w/ bandwidth: " << w.summary() << '\n';
    jct_with.push_back(w.average_jct_minutes());
    jct_without.push_back(wo.average_jct_minutes());
    bw_with.push_back(w.bandwidth_tb);
    bw_without.push_back(wo.bandwidth_tb);
  }
  std::cout << '\n';
  table.add_row("JCT w/ bandwidth", jct_with, 1);
  table.add_row("JCT w/o bandwidth", jct_without, 1);
  table.add_row("BW  w/ bandwidth", bw_with, 2);
  table.add_row("BW  w/o bandwidth", bw_without, 2);
  table.render(std::cout);
  if (!csv_dir.empty()) exp::write_csv(table, csv_dir + "/fig7_bandwidth.csv");
  std::cout << "\nexpected shape (paper): the bandwidth consideration reduces JCT by\n"
               "5-15% and bandwidth cost by 20-35%.\n";

  // ---- Phase 2: link contention + network-aware placement (§5e) ---------
  // Racked testbed with a rack uplink tight enough that cross-rack
  // all-reduce rings fair-share it away, and per-model duty cycles so
  // anti-phasing co-located gangs (what Cassini does, and the baselines
  // don't) recovers real iteration time.
  std::cout << "\n=== Link contention: Cassini vs contention-oblivious baselines ===\n\n";
  exp::Scenario net = exp::testbed_scenario();
  net.cluster.servers_per_rack = 4;
  exp::set_contention(net, 800.0, 120.0, /*duty_cycles=*/true);
  const std::size_t net_jobs = quick ? 155 : 310;

  const std::vector<std::string> contenders = {"Cassini", "MLF-H", "Tiresias", "Gandiva"};
  std::vector<exp::RunRequest> net_requests;
  for (const std::string& name : contenders) {
    net_requests.push_back(exp::make_request(net, name, net_jobs, with_bw));
  }
  const std::vector<RunMetrics> net_runs = exp::run_batch(net_requests, options);
  for (const RunMetrics& m : net_runs) std::cout << "  " << m.summary() << '\n';

  const RunMetrics& cassini = net_runs.front();
  std::size_t best_baseline = 1;
  for (std::size_t i = 2; i < net_runs.size(); ++i) {
    if (net_runs[i].average_jct_minutes() <
        net_runs[best_baseline].average_jct_minutes()) {
      best_baseline = i;
    }
  }
  const double cassini_jct = cassini.average_jct_minutes();
  const double baseline_jct = net_runs[best_baseline].average_jct_minutes();

  // Gates. The JCT margin sits well below the measured gap (see the gap
  // printed below) so seed-to-seed drift cannot flake CI; the slowdown
  // gate proves the mix is genuinely network-bound for the baselines.
  const double jct_margin = 0.03;  // Cassini >= 3% better on average JCT
  const bool jct_ok = cassini_jct <= baseline_jct * (1.0 - jct_margin);
  const bool contended_ok =
      net_runs[best_baseline].contention_slowdown_seconds > 0.0 &&
      cassini.contention_slowdown_seconds > 0.0;
  const bool rephased_ok = cassini.phase_offset_hits > 0;

  std::cout << "\n  Cassini avg JCT " << format_double(cassini_jct, 1) << "min vs best baseline ("
            << net_runs[best_baseline].scheduler << ") " << format_double(baseline_jct, 1)
            << "min — " << format_double(100.0 * (1.0 - cassini_jct / baseline_jct), 1)
            << "% better (gate: >= " << format_double(100.0 * jct_margin, 0) << "%)\n"
            << "  baseline contention loss "
            << format_double(net_runs[best_baseline].contention_slowdown_seconds, 0)
            << "s, Cassini " << format_double(cassini.contention_slowdown_seconds, 0)
            << "s, comm windows re-phased " << cassini.phase_offset_hits << "x\n";

  std::ofstream json(out_file);
  if (!json) {
    std::cerr << "cannot write " << out_file << "\n";
    return 1;
  }
  json << "{\n  \"benchmark\": \"fig7_bandwidth\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"contention\": {\n"
       << "    \"jobs\": " << net_jobs << ",\n    \"uplink_mbps\": 120.0,\n    \"runs\": [\n";
  for (std::size_t i = 0; i < net_runs.size(); ++i) {
    const RunMetrics& m = net_runs[i];
    json << "      {\"scheduler\": \"" << m.scheduler << "\", \"avg_jct_min\": "
         << m.average_jct_minutes() << ", \"makespan_h\": " << m.makespan_hours
         << ", \"link_busy_s\": " << m.link_busy_seconds
         << ", \"contention_slowdown_s\": " << m.contention_slowdown_seconds
         << ", \"phase_offset_hits\": " << m.phase_offset_hits << "}"
         << (i + 1 < net_runs.size() ? ",\n" : "\n");
  }
  json << "    ],\n    \"jct_margin_gate\": " << jct_margin
       << ",\n    \"jct_gate_passed\": " << (jct_ok ? "true" : "false")
       << ",\n    \"network_bound\": " << (contended_ok ? "true" : "false")
       << ",\n    \"rephased\": " << (rephased_ok ? "true" : "false") << "\n  }\n}\n";

  if (!jct_ok || !contended_ok || !rephased_ok) {
    std::cerr << "\nGATE FAILED: "
              << (!jct_ok ? "Cassini did not beat the best baseline by the JCT margin; " : "")
              << (!contended_ok ? "the mix was not network-bound; " : "")
              << (!rephased_ok ? "Cassini never re-phased a comm window; " : "") << "\n";
    return 1;
  }
  std::cout << "\nall contention gates passed\n";
  return 0;
}
