// Micro-benchmarks of the DRL substrate: policy inference (the per-task
// cost of MLF-RL decisions), REINFORCE updates, imitation steps, and the
// learning-curve fit behind OptStop.
//
// Usage: bench_micro_rl [--threads N] [google-benchmark flags]
// --threads feeds the shared-runner batch benchmark (0 = hardware).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/runner.hpp"
#include "predict/learning_curve.hpp"
#include "rl/reinforce.hpp"

namespace {

using namespace mlfs;

/// Thread count for the shared-runner benchmark (set by main, 0 = hardware).
unsigned g_threads = 0;

rl::ReinforceConfig agent_config() {
  rl::ReinforceConfig config;
  config.state_dim = 40;
  config.action_dim = 4;
  config.hidden = {48, 48};
  config.seed = 5;
  return config;
}

void BM_PolicyInference(benchmark::State& state) {
  rl::ReinforceAgent agent(agent_config());
  Rng rng(3);
  std::vector<double> obs(40);
  for (auto& v : obs) v = rng.uniform();
  for (auto _ : state) benchmark::DoNotOptimize(agent.act_greedy(obs));
}
BENCHMARK(BM_PolicyInference);

void BM_PolicySample(benchmark::State& state) {
  rl::ReinforceAgent agent(agent_config());
  Rng rng(3);
  std::vector<double> obs(40);
  for (auto& v : obs) v = rng.uniform();
  for (auto _ : state) benchmark::DoNotOptimize(agent.act(obs));
}
BENCHMARK(BM_PolicySample);

void BM_ReinforceUpdate(benchmark::State& state) {
  rl::ReinforceAgent agent(agent_config());
  Rng rng(7);
  std::vector<rl::Episode> episodes(1);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    rl::Transition tr;
    tr.state.resize(40);
    for (auto& v : tr.state) v = rng.uniform();
    tr.action = static_cast<int>(rng.uniform_int(0, 3));
    tr.reward = rng.uniform();
    episodes[0].push_back(std::move(tr));
  }
  for (auto _ : state) benchmark::DoNotOptimize(agent.update(episodes));
}
BENCHMARK(BM_ReinforceUpdate)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_ImitationStep(benchmark::State& state) {
  rl::ReinforceAgent agent(agent_config());
  Rng rng(9);
  nn::Matrix states(64, 40);
  for (auto& v : states.raw()) v = rng.uniform();
  std::vector<int> actions(64);
  for (auto& a : actions) a = static_cast<int>(rng.uniform_int(0, 3));
  for (auto _ : state) benchmark::DoNotOptimize(agent.imitation_step(states, actions));
}
BENCHMARK(BM_ImitationStep)->Unit(benchmark::kMicrosecond);

void BM_LearningCurveFit(benchmark::State& state) {
  const LearningCurvePredictor predictor;
  std::vector<double> observed;
  for (int i = 1; i <= static_cast<int>(state.range(0)); ++i) {
    observed.push_back(0.9 * i / (i + 12.0));
  }
  for (auto _ : state) benchmark::DoNotOptimize(predictor.predict_at(observed, 400));
}
BENCHMARK(BM_LearningCurveFit)->Arg(10)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

/// End-to-end MLF-RL smoke runs (policy inference + imitation inside a full
/// simulation) through the shared experiment runner. Honors --threads.
void BM_RunnerRlBatch(benchmark::State& state) {
  exp::Scenario scenario = exp::smoke_scenario();
  std::vector<exp::RunRequest> requests;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    exp::Scenario s = scenario;
    s.engine.seed = seed;
    requests.push_back(exp::make_request(s, "MLF-RL", s.trace.num_jobs));
  }
  exp::RunOptions options;
  options.threads = g_threads;
  options.verbose = false;
  for (auto _ : state) benchmark::DoNotOptimize(exp::run_batch(requests, options));
  state.SetLabel(std::to_string(exp::resolve_threads(g_threads)) + " threads");
}
BENCHMARK(BM_RunnerRlBatch)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: consume --threads N before google-benchmark parses flags
// (it rejects unknown arguments).
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = static_cast<unsigned>(std::stoul(argv[++i]));
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
