// Micro-benchmarks (google-benchmark) of MLFS's hot decision paths: the
// Eq. 2-6 priority computation, RIAL host selection, migration-victim
// selection, and the cluster utilization queries they lean on. These are
// the per-round costs behind the Fig. 4(h)/5(h) scheduler-overhead curves.
//
// Usage: bench_micro_components [--threads N] [google-benchmark flags]
// --threads feeds the shared-runner batch benchmark (0 = hardware).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/migration.hpp"
#include "core/mlf_h.hpp"
#include "core/placement.hpp"
#include "core/priority.hpp"
#include "exp/parallel.hpp"
#include "exp/runner.hpp"
#include "predict/service.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace.hpp"

namespace {

using namespace mlfs;

/// Thread count for the shared-runner benchmark (set by main, 0 = hardware).
unsigned g_threads = 0;

struct NoopOps : SchedulerOps {
  bool place(TaskId, ServerId, int) override { return false; }
  void preempt_to_queue(TaskId) override {}
  bool migrate(TaskId, ServerId, int) override { return false; }
  void release(TaskId) override {}
};

/// A populated cluster: `servers` x 4 GPUs, ~2 tasks placed per GPU.
struct World {
  Cluster cluster;
  NoopOps ops;
  std::vector<TaskId> queue;

  explicit World(std::size_t servers)
      : cluster(ClusterConfig{servers, 4, 1000.0}) {
    TraceConfig config;
    config.num_jobs = servers * 6;
    config.duration_hours = 1.0;
    config.seed = 7;
    config.max_gpu_request = 8;
    Rng rng(13);
    auto specs = PhillyTraceGenerator(config).generate();
    for (auto& spec : specs) {
      auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
      cluster.register_job(std::move(inst.job), std::move(inst.tasks));
    }
    // Greedy-place roughly half the tasks; queue the rest.
    for (std::size_t t = 0; t < cluster.task_count(); ++t) {
      const TaskId tid = static_cast<TaskId>(t);
      bool placed = false;
      if (rng.bernoulli(0.6)) {
        for (std::size_t s = 0; s < cluster.server_count() && !placed; ++s) {
          const Server& server = cluster.server(static_cast<ServerId>(s));
          const int gpu = server.least_loaded_gpu();
          if (server.fits_without_overload(cluster.task(tid), gpu, 0.9)) {
            cluster.place_task(tid, static_cast<ServerId>(s), gpu);
            placed = true;
          }
        }
      }
      if (!placed) queue.push_back(tid);
    }
  }

  SchedulerContext ctx() {
    return SchedulerContext{cluster, queue, ops, 3600.0, 0.9, nullptr, kInvalidJob};
  }
};

void BM_PriorityJobVector(benchmark::State& state) {
  World world(20);
  const core::PriorityCalculator calc{core::PriorityParams{}};
  std::size_t i = 0;
  for (auto _ : state) {
    const Job& job = world.cluster.job(static_cast<JobId>(i++ % world.cluster.job_count()));
    benchmark::DoNotOptimize(calc.job_priorities(world.cluster, job, 3600.0));
  }
}
BENCHMARK(BM_PriorityJobVector);

void BM_RialChooseHost(benchmark::State& state) {
  World world(static_cast<std::size_t>(state.range(0)));
  const core::MlfPlacement placement{core::PlacementParams{}};
  auto ctx = world.ctx();
  std::size_t i = 0;
  for (auto _ : state) {
    const Task& task = world.cluster.task(world.queue[i++ % world.queue.size()]);
    benchmark::DoNotOptimize(placement.choose_host(ctx, task, false));
  }
}
BENCHMARK(BM_RialChooseHost)->Arg(20)->Arg(100)->Arg(550);

void BM_MigrationVictim(benchmark::State& state) {
  World world(20);
  const core::MigrationSelector selector{core::MigrationParams{}};
  auto priority = [](TaskId id) { return static_cast<double>(id % 17); };
  std::size_t i = 0;
  for (auto _ : state) {
    const Server& server =
        world.cluster.server(static_cast<ServerId>(i++ % world.cluster.server_count()));
    benchmark::DoNotOptimize(selector.select_victim(world.cluster, server, 0.5, priority));
  }
}
BENCHMARK(BM_MigrationVictim);

void BM_ServerUtilization(benchmark::State& state) {
  World world(20);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.cluster.server(static_cast<ServerId>(i++ % 20)).utilization());
  }
}
BENCHMARK(BM_ServerUtilization);

void BM_OverloadDegree(benchmark::State& state) {
  World world(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(world.cluster.overload_degree());
}
BENCHMARK(BM_OverloadDegree)->Arg(20)->Arg(550);

void BM_MlfHFullRound(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    World world(20);
    core::MlfsConfig config;
    core::MlfH scheduler{config};
    auto ctx = world.ctx();
    state.ResumeTiming();
    scheduler.schedule(ctx);
  }
}
BENCHMARK(BM_MlfHFullRound)->Unit(benchmark::kMicrosecond);

/// A trace job with a long enough iteration budget to grow a deep fit
/// chain (falls back to the longest job in the draw).
Job make_curve_job(int min_iters) {
  TraceConfig config;
  config.num_jobs = 64;
  config.duration_hours = 1.0;
  config.seed = 21;
  config.max_gpu_request = 8;
  auto specs = PhillyTraceGenerator(config).generate();
  std::size_t pick = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].max_iterations >= min_iters) { pick = i; break; }
    if (specs[i].max_iterations > specs[pick].max_iterations) pick = i;
  }
  return std::move(ModelZoo::instantiate(specs[pick], 0).job);
}

/// The engine's OptStop pattern: one job advances iteration by iteration
/// with a predict_at_max query at every check point. Arg selects the mode:
/// 0 = legacy stateless cold fits (the full chain recomputed per check),
/// 1 = the incremental service (one new warm link per check),
/// 2 = service + an immediately repeated query per check (the MLF-C
///     controller's pattern — the memo hit).
void BM_CurveFitChain(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int kCheckInterval = 5;
  for (auto _ : state) {
    state.PauseTiming();
    Job job = make_curve_job(100);
    PredictConfig pc;
    pc.enabled = mode != 0;
    PredictionService service(pc, kCheckInterval);
    const int iters = std::min(100, job.spec().max_iterations);
    state.ResumeTiming();
    double acc = 0.0;
    for (int i = 0; i < iters; ++i) {
      job.complete_iteration();
      service.on_iteration_complete(job);
      if (job.completed_iterations() % kCheckInterval != 0) continue;
      acc += service.predict_at_max(job).accuracy;
      if (mode == 2) acc += service.predict_at_max(job).accuracy;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(mode == 0 ? "legacy-cold" : mode == 1 ? "service" : "service+memo");
}
BENCHMARK(BM_CurveFitChain)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

/// End-to-end cost of a small scheduler batch through the shared experiment
/// runner — the unit the figure harnesses parallelize. Honors --threads.
void BM_RunnerBatch(benchmark::State& state) {
  exp::Scenario scenario = exp::smoke_scenario();
  const std::vector<std::string> schedulers = {"MLF-H", "Tiresias", "SLAQ",
                                               "TensorFlow"};
  std::vector<exp::RunRequest> requests;
  for (const std::string& name : schedulers) {
    core::MlfsConfig config;
    config.heuristic_only = true;
    requests.push_back(exp::make_request(scenario, name, scenario.trace.num_jobs, config));
  }
  exp::RunOptions options;
  options.threads = g_threads;
  options.verbose = false;
  for (auto _ : state) benchmark::DoNotOptimize(exp::run_batch(requests, options));
  state.SetLabel(std::to_string(exp::resolve_threads(g_threads)) + " threads");
}
BENCHMARK(BM_RunnerBatch)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: consume --threads N before google-benchmark parses flags
// (it rejects unknown arguments).
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = static_cast<unsigned>(std::stoul(argv[++i]));
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
