// Figure 4 — "Overall performance in real experiments" (§4.2.1).
//
// Reproduces all eight panels on the paper's testbed configuration
// (20 servers × 4 GPUs = 80 GPUs; job counts 155/310/620/1240/1860 over a
// one-week synthetic Philly-style trace) for the ten schedulers of the
// paper's legend. Panel (a) is the JCT CDF at the 620-job point; panels
// (b)-(h) sweep the job count. The §4.2.1 makespan numbers are printed as
// an extra table.
//
// Usage: bench_fig4_overall [--quick] [--csv-dir DIR] [--seed N] [--threads N]
//   --quick    runs only the {155, 620, 1860} points (shape check)
//   --threads  concurrent runs (default 0 = hardware concurrency; the
//              tables are identical for every N — see exp/runner.hpp)
#include <cstring>
#include <iostream>
#include <string>

#include "exp/runner.hpp"

namespace {

using namespace mlfs;

double avg_jct(const RunMetrics& m) { return m.average_jct_minutes(); }
double deadline_ratio(const RunMetrics& m) { return m.deadline_ratio; }
double avg_wait(const RunMetrics& m) { return m.average_waiting_seconds(); }
double avg_accuracy(const RunMetrics& m) { return m.average_accuracy; }
double accuracy_ratio(const RunMetrics& m) { return m.accuracy_ratio; }
double bandwidth(const RunMetrics& m) { return m.bandwidth_tb; }
double overhead(const RunMetrics& m) { return m.sched_overhead_ms; }
double makespan(const RunMetrics& m) { return m.makespan_hours; }

}  // namespace

int main(int argc, char** argv) {
  using namespace mlfs;
  bool quick = false;
  std::string csv_dir;
  std::uint64_t seed = 42;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) seed = std::stoull(argv[++i]);
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  exp::Scenario scenario = exp::testbed_scenario(seed);
  if (quick) scenario.sweep_multipliers = {0.25, 1.0, 3.0};

  std::cout << "=== Figure 4: overall performance, " << scenario.name << " ===\n"
            << "cluster: " << scenario.cluster.server_count << " servers x "
            << scenario.cluster.gpus_per_server << " GPUs; trace week with base "
            << scenario.trace.num_jobs << " jobs\n\n";

  const auto schedulers = exp::paper_scheduler_names();
  exp::RunOptions options;
  options.threads = threads;
  const auto results = exp::run_sweep(scenario, schedulers, {}, options);
  std::cout << '\n';

  // Panel (a): JCT CDF at the base (620-job) point.
  const auto counts = exp::sweep_job_counts(scenario);
  std::size_t base_index = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == scenario.trace.num_jobs) base_index = i;
  }
  const std::vector<double> breakpoints = {1, 10, 50, 100, 200, 500, 1000, 5000, 20000};
  Table cdf = exp::cdf_table("Fig 4(a): CDF of jobs vs JCT (minutes), " +
                                 std::to_string(counts[base_index]) + " jobs",
                             schedulers, results, base_index, breakpoints);
  cdf.render(std::cout);
  std::cout << '\n';

  struct Panel {
    const char* title;
    double (*extract)(const RunMetrics&);
    int precision;
    const char* csv;
  };
  const Panel panels[] = {
      {"Fig 4(b): average JCT (minutes)", avg_jct, 1, "fig4b_avg_jct.csv"},
      {"Fig 4(c): job deadline guarantee ratio", deadline_ratio, 3, "fig4c_deadline.csv"},
      {"Fig 4(d): average job waiting time (seconds)", avg_wait, 0, "fig4d_waiting.csv"},
      {"Fig 4(e): average accuracy (by deadline)", avg_accuracy, 3, "fig4e_accuracy.csv"},
      {"Fig 4(f): accuracy guarantee ratio", accuracy_ratio, 3, "fig4f_accuracy_ratio.csv"},
      {"Fig 4(g): bandwidth cost (TB)", bandwidth, 2, "fig4g_bandwidth.csv"},
      {"Fig 4(h): scheduler time overhead (ms)", overhead, 3, "fig4h_overhead.csv"},
      {"§4.2.1: makespan (hours)", makespan, 1, "fig4_makespan.csv"},
  };
  for (const Panel& panel : panels) {
    Table table = exp::panel_table(panel.title, scenario, schedulers, results, panel.extract,
                                   panel.precision);
    table.render(std::cout);
    std::cout << '\n';
    if (!csv_dir.empty()) exp::write_csv(table, csv_dir + "/" + panel.csv);
  }

  std::cout << "expected shape (paper): JCT/wait/makespan: MLFS < MLF-RL < MLF-H < "
               "Graphene < Tiresias~HyperSched~RL~Gandiva < TensorFlow <~ SLAQ;\n"
               "deadline & accuracy: MLFS family on top, HyperSched best baseline;\n"
               "bandwidth: MLFS lowest, Gandiva highest among baselines;\n"
               "overhead: simple heuristics < RL-based < MLFS.\n";
  return 0;
}
