// Scheduler hot-path benchmark — the perf-trajectory baseline for the
// incremental load index + comm-volume memoization (DESIGN.md, "Scheduler
// hot path").
//
// For each cluster size it runs MLF-H twice on the *same* workload and
// seeds: once in legacy mode (full fleet scans, recompute-per-candidate
// comm volumes, comparator-driven sorts) and once with the indexed hot
// path. Both runs stream their JSONL event log through a hash so the
// benchmark also *proves* the optimization changed no decision: the two
// event streams must be byte-identical.
//
// All simulations execute through the shared experiment runner
// (exp::execute_run). The hash-equivalence pass runs on the pool
// (--threads; hashes are simulation-deterministic, so parallelism cannot
// change them); the timing pass stays strictly serial so wall-clock
// per-round numbers are never polluted by co-running simulations.
//
// Emits BENCH_sched_hotpath.json with per-point mean wall-clock per
// scheduling round, the hot-path counters, the speedup, and the
// decisions_identical verdict. CI runs `--smoke` and uploads the file.
//
// Usage: bench_sched_hotpath [--smoke] [--out FILE] [--threads N]
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/runner.hpp"
#include "sim/event_log.hpp"
#include "workload/trace.hpp"

namespace {

using namespace mlfs;

/// Sink that FNV-1a-hashes everything written to it — lets us compare two
/// multi-million-line event streams without holding either in memory.
class HashStreamBuf : public std::streambuf {
 public:
  std::uint64_t hash() const { return hash_; }
  std::uint64_t bytes() const { return bytes_; }

 protected:
  int overflow(int ch) override {
    if (ch != traits_type::eof()) mix(static_cast<unsigned char>(ch));
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) mix(static_cast<unsigned char>(s[i]));
    return n;
  }

 private:
  void mix(unsigned char c) {
    hash_ = (hash_ ^ c) * 1099511628211ull;
    ++bytes_;
  }
  std::uint64_t hash_ = 1469598103934665603ull;
  std::uint64_t bytes_ = 0;
};

struct SizePoint {
  std::size_t servers;
  std::size_t jobs;
};

/// The shared-runner request for one (size, mode) simulation.
exp::RunRequest hotpath_request(const SizePoint& pt, bool legacy) {
  exp::RunRequest request;
  request.label = std::string(legacy ? "legacy" : "indexed") + " " +
                  std::to_string(pt.servers) + " servers";
  request.cluster.server_count = pt.servers;
  request.cluster.gpus_per_server = 4;
  request.cluster.incremental_load_index = !legacy;
  request.trace.num_jobs = pt.jobs;
  request.trace.duration_hours = 12.0;
  request.trace.seed = 42;
  request.trace.max_gpu_request =
      std::min<int>(32, static_cast<int>(pt.servers) * request.cluster.gpus_per_server / 2);
  request.engine.seed = 42 ^ 0xabc;
  request.scheduler = "MLF-H";
  request.mlfs_config.heuristic_only = true;
  request.mlfs_config.legacy_hot_path = legacy;
  return request;
}

/// Per-run hashing observer bundle with stable addresses for the batch.
struct HashedRun {
  HashStreamBuf sink;
  std::unique_ptr<std::ostream> out;
  std::unique_ptr<JsonlEventLog> log;

  HashedRun() : out(std::make_unique<std::ostream>(&sink)),
                log(std::make_unique<JsonlEventLog>(*out)) {}
};

void emit_counters(std::ostream& os, const RunMetrics& m) {
  os << "{\"ms_per_round\": " << m.sched_overhead_ms << ", \"rounds\": " << m.sched_rounds
     << ", \"candidates_scanned\": " << m.candidates_scanned
     << ", \"comm_cache_hits\": " << m.comm_cache_hits
     << ", \"comm_cache_misses\": " << m.comm_cache_misses
     << ", \"load_index_rebuilds\": " << m.load_index_rebuilds
     << ", \"load_index_refreshes\": " << m.load_index_refreshes
     << ", \"servers_reindexed\": " << m.servers_reindexed << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_file = "BENCH_sched_hotpath.json";
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_file = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  const std::vector<SizePoint> points =
      smoke ? std::vector<SizePoint>{{8, 60}}
            : std::vector<SizePoint>{{16, 150}, {32, 300}, {64, 600}, {96, 900}};

  std::ofstream json(out_file);
  if (!json) {
    std::cerr << "cannot open " << out_file << "\n";
    return 1;
  }

  // Equivalence pass on the pool: legacy + indexed per point, each hashing
  // its own event stream. Results (and hashes) land by request index.
  std::vector<exp::RunRequest> hash_requests;
  std::vector<std::unique_ptr<HashedRun>> hashers;
  for (const SizePoint& pt : points) {
    for (const bool legacy : {true, false}) {
      hashers.push_back(std::make_unique<HashedRun>());
      exp::RunRequest request = hotpath_request(pt, legacy);
      request.observer = hashers.back()->log.get();
      hash_requests.push_back(std::move(request));
    }
  }
  exp::RunOptions hash_options;
  hash_options.threads = threads;
  hash_options.verbose = false;
  std::cout << "equivalence pass: " << hash_requests.size() << " hashed runs ("
            << exp::resolve_threads(threads) << " threads)\n";
  exp::run_batch(hash_requests, hash_options);

  json << "{\n  \"benchmark\": \"sched_hotpath\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"points\": [\n";

  bool all_identical = true;
  double largest_speedup = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SizePoint& pt = points[i];
    std::cout << "=== " << pt.servers << " servers / " << pt.jobs << " jobs ===\n";
    const HashedRun& legacy_hashed = *hashers[2 * i];
    const HashedRun& indexed_hashed = *hashers[2 * i + 1];
    // Timing pass: observer off, strictly serial, scheduler wall-clock only.
    const RunMetrics legacy = exp::execute_run(hotpath_request(pt, /*legacy=*/true));
    std::cout << "  legacy : " << legacy.summary() << "\n";
    const RunMetrics indexed = exp::execute_run(hotpath_request(pt, /*legacy=*/false));
    std::cout << "  indexed: " << indexed.summary() << "\n";

    const bool identical = legacy_hashed.sink.hash() == indexed_hashed.sink.hash() &&
                           legacy_hashed.sink.bytes() == indexed_hashed.sink.bytes() &&
                           indexed_hashed.sink.bytes() > 0;
    all_identical = all_identical && identical;
    const double speedup = indexed.sched_overhead_ms > 0.0
                               ? legacy.sched_overhead_ms / indexed.sched_overhead_ms
                               : 0.0;
    largest_speedup = speedup;  // points are ordered smallest -> largest
    std::cout << "  decisions_identical=" << (identical ? "true" : "false")
              << " speedup=" << speedup << "x ("
              << legacy.sched_overhead_ms << "ms -> "
              << indexed.sched_overhead_ms << "ms per round)\n";

    json << "    {\"servers\": " << pt.servers << ", \"jobs\": " << pt.jobs
         << ", \"decisions_identical\": " << (identical ? "true" : "false")
         << ", \"event_stream_bytes\": " << indexed_hashed.sink.bytes()
         << ", \"speedup\": " << speedup << ",\n     \"legacy\": ";
    emit_counters(json, legacy);
    json << ",\n     \"indexed\": ";
    emit_counters(json, indexed);
    json << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"largest_point_speedup\": " << largest_speedup
       << ",\n  \"all_decisions_identical\": " << (all_identical ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << out_file << "\n";

  if (!all_identical) {
    std::cerr << "FAIL: indexed hot path diverged from the legacy scheduler\n";
    return 1;
  }
  return 0;
}
