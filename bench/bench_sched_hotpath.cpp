// Scheduler hot-path benchmark — the perf-trajectory baseline for the
// incremental load index + comm-volume memoization (DESIGN.md, "Scheduler
// hot path").
//
// For each cluster size it runs MLF-H twice on the *same* workload and
// seeds: once in legacy mode (full fleet scans, recompute-per-candidate
// comm volumes, comparator-driven sorts) and once with the indexed hot
// path. Both runs stream their JSONL event log through a hash so the
// benchmark also *proves* the optimization changed no decision: the two
// event streams must be byte-identical.
//
// Emits BENCH_sched_hotpath.json with per-point mean wall-clock per
// scheduling round, the hot-path counters, the speedup, and the
// decisions_identical verdict. CI runs `--smoke` and uploads the file.
//
// Usage: bench_sched_hotpath [--smoke] [--out FILE]
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "core/mlf_h.hpp"
#include "sim/engine.hpp"
#include "sim/event_log.hpp"
#include "workload/trace.hpp"

namespace {

using namespace mlfs;

/// Sink that FNV-1a-hashes everything written to it — lets us compare two
/// multi-million-line event streams without holding either in memory.
class HashStreamBuf : public std::streambuf {
 public:
  std::uint64_t hash() const { return hash_; }
  std::uint64_t bytes() const { return bytes_; }

 protected:
  int overflow(int ch) override {
    if (ch != traits_type::eof()) mix(static_cast<unsigned char>(ch));
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) mix(static_cast<unsigned char>(s[i]));
    return n;
  }

 private:
  void mix(unsigned char c) {
    hash_ = (hash_ ^ c) * 1099511628211ull;
    ++bytes_;
  }
  std::uint64_t hash_ = 1469598103934665603ull;
  std::uint64_t bytes_ = 0;
};

struct SizePoint {
  std::size_t servers;
  std::size_t jobs;
};

struct ModeResult {
  RunMetrics metrics;
  std::uint64_t stream_hash = 0;
  std::uint64_t stream_bytes = 0;
};

/// One full simulation. `hash_events` attaches the JSONL observer and
/// hashes its stream; timing runs leave it off, because the observer
/// serializes events *inside* the timed scheduler window (ops.place emits
/// during schedule()) and would add the same constant to both modes,
/// diluting the measured speedup.
ModeResult run_mode(const SizePoint& pt, bool legacy, bool hash_events) {
  ClusterConfig cluster;
  cluster.server_count = pt.servers;
  cluster.gpus_per_server = 4;
  cluster.incremental_load_index = !legacy;

  core::MlfsConfig config;
  config.heuristic_only = true;
  config.legacy_hot_path = legacy;

  TraceConfig trace;
  trace.num_jobs = pt.jobs;
  trace.duration_hours = 12.0;
  trace.seed = 42;
  trace.max_gpu_request =
      std::min<int>(32, static_cast<int>(pt.servers) * cluster.gpus_per_server / 2);

  EngineConfig engine_config;
  engine_config.seed = 42 ^ 0xabc;

  core::MlfH scheduler{config};
  SimEngine engine(cluster, engine_config, PhillyTraceGenerator(trace).generate(), scheduler);
  HashStreamBuf sink;
  std::ostream out(&sink);
  JsonlEventLog log(out);
  if (hash_events) engine.set_observer(&log);

  ModeResult r;
  r.metrics = engine.run();
  r.stream_hash = sink.hash();
  r.stream_bytes = sink.bytes();
  return r;
}

void emit_counters(std::ostream& os, const RunMetrics& m) {
  os << "{\"ms_per_round\": " << m.sched_overhead_ms << ", \"rounds\": " << m.sched_rounds
     << ", \"candidates_scanned\": " << m.candidates_scanned
     << ", \"comm_cache_hits\": " << m.comm_cache_hits
     << ", \"comm_cache_misses\": " << m.comm_cache_misses
     << ", \"load_index_rebuilds\": " << m.load_index_rebuilds
     << ", \"load_index_refreshes\": " << m.load_index_refreshes
     << ", \"servers_reindexed\": " << m.servers_reindexed << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_file = "BENCH_sched_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_file = argv[++i];
  }

  const std::vector<SizePoint> points =
      smoke ? std::vector<SizePoint>{{8, 60}}
            : std::vector<SizePoint>{{16, 150}, {32, 300}, {64, 600}, {96, 900}};

  std::ofstream json(out_file);
  if (!json) {
    std::cerr << "cannot open " << out_file << "\n";
    return 1;
  }
  json << "{\n  \"benchmark\": \"sched_hotpath\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"points\": [\n";

  bool all_identical = true;
  double largest_speedup = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SizePoint& pt = points[i];
    std::cout << "=== " << pt.servers << " servers / " << pt.jobs << " jobs ===\n";
    // Equivalence pass: hash both event streams.
    const ModeResult legacy_hashed = run_mode(pt, /*legacy=*/true, /*hash_events=*/true);
    const ModeResult indexed_hashed = run_mode(pt, /*legacy=*/false, /*hash_events=*/true);
    // Timing pass: observer off, scheduler wall-clock only.
    const ModeResult legacy = run_mode(pt, /*legacy=*/true, /*hash_events=*/false);
    std::cout << "  legacy : " << legacy.metrics.summary() << "\n";
    const ModeResult indexed = run_mode(pt, /*legacy=*/false, /*hash_events=*/false);
    std::cout << "  indexed: " << indexed.metrics.summary() << "\n";

    const bool identical = legacy_hashed.stream_hash == indexed_hashed.stream_hash &&
                           legacy_hashed.stream_bytes == indexed_hashed.stream_bytes &&
                           indexed_hashed.stream_bytes > 0;
    all_identical = all_identical && identical;
    const double speedup = indexed.metrics.sched_overhead_ms > 0.0
                               ? legacy.metrics.sched_overhead_ms /
                                     indexed.metrics.sched_overhead_ms
                               : 0.0;
    largest_speedup = speedup;  // points are ordered smallest -> largest
    std::cout << "  decisions_identical=" << (identical ? "true" : "false")
              << " speedup=" << speedup << "x ("
              << legacy.metrics.sched_overhead_ms << "ms -> "
              << indexed.metrics.sched_overhead_ms << "ms per round)\n";

    json << "    {\"servers\": " << pt.servers << ", \"jobs\": " << pt.jobs
         << ", \"decisions_identical\": " << (identical ? "true" : "false")
         << ", \"event_stream_bytes\": " << indexed_hashed.stream_bytes
         << ", \"speedup\": " << speedup << ",\n     \"legacy\": ";
    emit_counters(json, legacy.metrics);
    json << ",\n     \"indexed\": ";
    emit_counters(json, indexed.metrics);
    json << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"largest_point_speedup\": " << largest_speedup
       << ",\n  \"all_decisions_identical\": " << (all_identical ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << out_file << "\n";

  if (!all_identical) {
    std::cerr << "FAIL: indexed hot path diverged from the legacy scheduler\n";
    return 1;
  }
  return 0;
}
