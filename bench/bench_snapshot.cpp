// Micro-benchmarks (google-benchmark) of the snapshot subsystem: snapshot
// serialization cost and restore cost at several mid-run engine sizes. The
// save path is what a production checkpoint stride pays per snapshot, so
// the headline number is bytes + wall time per save at a realistic event
// depth; restore cost bounds crash-recovery latency.
//
// Usage: bench_snapshot [google-benchmark flags]
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "exp/runner.hpp"
#include "sim/engine.hpp"

namespace {

using namespace mlfs;

exp::RunRequest snapshot_request(std::size_t servers, std::size_t jobs) {
  exp::RunRequest r;
  r.label = "bench-snapshot";
  r.cluster.server_count = servers;
  r.cluster.gpus_per_server = 4;
  r.cluster.servers_per_rack = 4;
  r.engine.seed = 17;
  r.engine.max_sim_time = hours(24.0 * 14);
  r.engine.fault.server_mtbf_hours = 24.0;
  r.engine.fault.task_kill_probability = 0.002;
  r.engine.recovery.enabled = true;
  r.trace.num_jobs = jobs;
  r.trace.duration_hours = 4.0;
  r.trace.seed = 5;
  r.trace.max_gpu_request = 8;
  r.scheduler = "MLF-H";
  return r;
}

/// Steps a fresh engine to `events` dispatched events (or completion).
exp::EngineBundle engine_at(std::size_t servers, std::size_t jobs, std::uint64_t events) {
  exp::EngineBundle bundle = exp::build_engine(snapshot_request(servers, jobs));
  while (bundle.engine->events_processed() < events && bundle.engine->step()) {
  }
  return bundle;
}

void BM_SnapshotSave(benchmark::State& state) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  const auto jobs = static_cast<std::size_t>(state.range(1));
  const exp::EngineBundle bundle = engine_at(servers, jobs, 2000);
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream os(std::ios::binary);
    bundle.engine->save_snapshot(os);
    bytes = os.str().size();
    benchmark::DoNotOptimize(os);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotSave)->Args({4, 20})->Args({16, 80})->Args({32, 200});

void BM_SnapshotRestore(benchmark::State& state) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  const auto jobs = static_cast<std::size_t>(state.range(1));
  const exp::EngineBundle donor = engine_at(servers, jobs, 2000);
  std::ostringstream os(std::ios::binary);
  donor.engine->save_snapshot(os);
  const std::string bytes = os.str();
  for (auto _ : state) {
    state.PauseTiming();
    exp::EngineBundle victim = exp::build_engine(snapshot_request(servers, jobs));
    state.ResumeTiming();
    std::istringstream is(bytes, std::ios::binary);
    victim.engine->restore_snapshot(is);
    benchmark::DoNotOptimize(victim.engine->event_stream_hash());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotRestore)->Args({4, 20})->Args({16, 80})->Args({32, 200});

/// The overhead a checkpoint stride adds to a whole run: events/sec with
/// and without a save every `stride` events (save to a reused stringstream,
/// no disk). Ratio of the two entries is the stride tax.
void BM_RunWithSnapshotStride(benchmark::State& state) {
  const auto stride = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::EngineBundle bundle = exp::build_engine(snapshot_request(4, 20));
    while (bundle.engine->step()) {
      if (stride > 0 && bundle.engine->events_processed() % stride == 0) {
        std::ostringstream os(std::ios::binary);
        bundle.engine->save_snapshot(os);
        benchmark::DoNotOptimize(os);
      }
    }
    events = bundle.engine->events_processed();
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RunWithSnapshotStride)->Arg(0)->Arg(500)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
