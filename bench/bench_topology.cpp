// Rack-topology extension study (the paper's §5 limitation, implemented):
// MLF-H on a flat network vs an oversubscribed racked network, with and
// without the topology-aware placement term. Reports JCT, total and
// inter-rack bandwidth.
//
// Usage: bench_topology [--jobs N] [--csv-dir DIR] [--threads N]
#include <cstring>
#include <iostream>

#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace mlfs;
  std::size_t jobs = 1240;
  std::string csv_dir;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) jobs = std::stoul(argv[++i]);
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  std::cout << "=== Topology extension: MLF-H under rack oversubscription ===\n\n";

  Table table("flat vs racked (4 servers/rack, slow inter-rack core), " +
              std::to_string(jobs) + " jobs");
  table.set_header({"configuration", "avg JCT (min)", "deadline ratio", "bandwidth (TB)",
                    "inter-rack (TB)"});

  struct Case {
    const char* label;
    int servers_per_rack;
    bool topology_aware;
  };
  const Case cases[] = {
      {"flat network", 0, false},
      {"racked, topology-blind placement", 4, false},
      {"racked, topology-aware placement", 4, true},
  };
  // Shared runner: all three network cases in one batch, results by index.
  std::vector<exp::RunRequest> requests;
  for (const Case& c : cases) {
    exp::Scenario scenario = exp::testbed_scenario();
    scenario.cluster.servers_per_rack = c.servers_per_rack;
    core::MlfsConfig config;
    config.heuristic_only = true;
    config.placement.use_topology = c.topology_aware;
    exp::RunRequest request = exp::make_request(scenario, "MLF-H", jobs, config);
    request.label = c.label;
    requests.push_back(std::move(request));
  }
  exp::RunOptions options;
  options.threads = threads;
  options.verbose = false;
  const std::vector<RunMetrics> runs = exp::run_batch(requests, options);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Case& c = cases[i];
    const RunMetrics& m = runs[i];
    std::cout << "  " << c.label << ": " << m.summary() << '\n';
    table.add_row(c.label, {m.average_jct_minutes(), m.deadline_ratio, m.bandwidth_tb,
                            m.inter_rack_tb},
                  2);
  }
  std::cout << '\n';
  table.render(std::cout);
  if (!csv_dir.empty()) exp::write_csv(table, csv_dir + "/topology.csv");

  std::cout << "\nexpected shape: racks cost JCT via the oversubscribed core; the\n"
               "topology-aware placement term claws part of it back by keeping\n"
               "communicating gangs inside racks (lower inter-rack share).\n";
  return 0;
}
