// Large-scale placement + prediction benchmark — the exit artifact for the
// bucketed placement index and the memoized prediction service (DESIGN.md,
// "Scheduler hot path" and "Prediction service").
//
// Replays a Philly-scale point — 550 servers / 2474 GPUs (the trace's
// heterogeneous footprint) with a saturating arrival stream — end-to-end
// under MLF-H three times:
//
//   A  bucketed index + prediction service   (the default configuration)
//   B  bucketed index + legacy cold-fit path (stateless curve refits)
//   C  linear funnel  + prediction service
//
// All legs stream their JSONL event logs through an FNV-1a hash, so the
// benchmark *proves* neither the index (A vs C) nor the memoized,
// warm-started curve-fit chains (A vs B) changed any decision. Leg A's
// candidates_linear / candidates_scanned quotient is the measured
// candidate reduction; B's / A's nm_objective_evals quotient is the
// measured curve-fit work reduction, and A's fit_wall_ms / run_wall_ms is
// the wall-clock share the predictor still costs — all three are gated.
// A second stage runs every registered scheduler at a mid-size point with
// the same three legs, so the byte-identical claims cover the whole
// registry rather than MLF-H alone.
//
// All legs execute through the shared experiment runner on the pool
// (hashes and counters are simulation-deterministic, so parallelism
// cannot change them; only the real-clock measurements — sched_overhead_ms
// and the fit/run wall times — carry contention noise, and the wall-share
// gate is a ratio of two clocks inside the *same* run).
//
// Emits BENCH_largescale.json (with the predictor timing breakdown) and
// exits non-zero if any leg pair diverges or any gate fails. CI runs
// `--smoke` (same fleet, shorter stream, smaller matrix) and uploads the
// file.
//
// Usage: bench_largescale [--smoke] [--out FILE] [--threads N]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "sim/event_log.hpp"

namespace {

using namespace mlfs;

/// Sink that FNV-1a-hashes everything written to it — compares
/// multi-million-line event streams without holding either in memory.
class HashStreamBuf : public std::streambuf {
 public:
  std::uint64_t hash() const { return hash_; }
  std::uint64_t bytes() const { return bytes_; }

 protected:
  int overflow(int ch) override {
    if (ch != traits_type::eof()) mix(static_cast<unsigned char>(ch));
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) mix(static_cast<unsigned char>(s[i]));
    return n;
  }

 private:
  void mix(unsigned char c) {
    hash_ = (hash_ ^ c) * 1099511628211ull;
    ++bytes_;
  }
  std::uint64_t hash_ = 1469598103934665603ull;
  std::uint64_t bytes_ = 0;
};

/// Per-run hashing observer bundle with stable addresses for the batch.
struct HashedRun {
  HashStreamBuf sink;
  std::unique_ptr<std::ostream> out;
  std::unique_ptr<JsonlEventLog> log;

  HashedRun() : out(std::make_unique<std::ostream>(&sink)),
                log(std::make_unique<JsonlEventLog>(*out)) {}
};

/// The Philly-scale leg: heterogeneous 550-server / 2474-GPU fleet, MLF-H,
/// arrival rate held at the saturating ~375 jobs/hour the full trace
/// averages, so the funnel is measured under sustained overload — the
/// regime the index exists for.
exp::RunRequest philly_request(std::size_t jobs, double hours, bool bucketed, bool service) {
  exp::RunRequest request;
  request.label = std::string(bucketed ? "bucketed" : "linear") +
                  (service ? "" : " legacy-fit") + " philly-550";
  request.cluster.server_count = 550;
  request.cluster.total_gpus = 2474;
  request.cluster.gpus_per_server = 4;  // overridden by total_gpus
  request.cluster.placement_bucket_index = bucketed;
  request.trace.num_jobs = jobs;
  request.trace.duration_hours = hours;
  request.trace.seed = 2020;
  request.trace.max_gpu_request = 32;
  request.engine.seed = 2020 ^ 0xbeef;
  request.engine.predict.enabled = service;
  request.scheduler = "MLF-H";
  request.mlfs_config.heuristic_only = true;
  return request;
}

/// One mid-size matrix leg: every registered scheduler must stay
/// byte-identical with the index on and with the prediction service on.
exp::RunRequest matrix_request(const std::string& scheduler, std::size_t servers,
                               std::size_t jobs, double hours, bool bucketed, bool service) {
  exp::RunRequest request;
  request.label = std::string(bucketed ? "bucketed" : "linear") +
                  (service ? "" : " legacy-fit") + " " + scheduler;
  request.cluster.server_count = servers;
  request.cluster.gpus_per_server = 4;
  request.cluster.placement_bucket_index = bucketed;
  request.trace.num_jobs = jobs;
  request.trace.duration_hours = hours;
  request.trace.seed = 1117;
  request.trace.max_gpu_request = 16;
  request.engine.seed = 1117 ^ 0xfeed;
  request.engine.predict.enabled = service;
  request.scheduler = scheduler;
  return request;
}

bool identical(const HashedRun& a, const HashedRun& b) {
  return a.sink.hash() == b.sink.hash() && a.sink.bytes() == b.sink.bytes() &&
         a.sink.bytes() > 0;
}

double reduction(const RunMetrics& m) {
  return m.candidates_scanned > 0
             ? static_cast<double>(m.candidates_linear) /
                   static_cast<double>(m.candidates_scanned)
             : 0.0;
}

double nm_reduction(const RunMetrics& service, const RunMetrics& legacy) {
  return service.nm_objective_evals > 0
             ? static_cast<double>(legacy.nm_objective_evals) /
                   static_cast<double>(service.nm_objective_evals)
             : 0.0;
}

double fit_share(const RunMetrics& m) {
  return m.run_wall_ms > 0.0 ? m.fit_wall_ms / m.run_wall_ms : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_file = "BENCH_largescale.json";
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_file = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  // Full mode replays the trace's job count over its average arrival rate;
  // smoke keeps the same 550-server fleet (the gate is about scale, not a
  // toy topology) on a shorter stream so CI finishes in a few minutes.
  const std::size_t philly_jobs = smoke ? 3000 : 117000;
  const double philly_hours = smoke ? 4.0 : 280.0;
  const std::size_t matrix_servers = smoke ? 32 : 64;
  const std::size_t matrix_jobs = smoke ? 300 : 800;
  const double matrix_hours = smoke ? 4.0 : 6.0;
  // The full Philly point measures >= 120x; smoke's shorter stream spends
  // proportionally longer in the (index-unfriendly) empty-cluster fill
  // phase, so its floor is lower. Both gates sit well below measured
  // values and orders of magnitude above the ~5x a feasibility-only
  // funnel can reach.
  const double reduction_gate = smoke ? 40.0 : 100.0;
  // Curve-fit work: the legacy path recomputes the whole warm-start chain
  // at every OptStop check (quadratic in chain length per job); the
  // service computes each link once. The aggregate quotient is dominated
  // by the long jobs, so >= 5x holds at both scales.
  const double nm_gate = 5.0;
  // Predictor wall-clock share of the default leg (was ~56% of the run
  // before the service; the incremental chains must keep it under 20%).
  const double fit_share_gate = 0.20;

  std::ofstream json(out_file);
  if (!json) {
    std::cerr << "cannot open " << out_file << "\n";
    return 1;
  }

  const std::vector<std::string> schedulers = exp::registered_scheduler_names();

  std::vector<exp::RunRequest> requests;
  std::vector<std::unique_ptr<HashedRun>> hashers;
  auto add = [&](exp::RunRequest request) {
    hashers.push_back(std::make_unique<HashedRun>());
    request.observer = hashers.back()->log.get();
    requests.push_back(std::move(request));
  };
  // Philly legs A / B / C (see file comment).
  add(philly_request(philly_jobs, philly_hours, /*bucketed=*/true, /*service=*/true));
  add(philly_request(philly_jobs, philly_hours, /*bucketed=*/true, /*service=*/false));
  add(philly_request(philly_jobs, philly_hours, /*bucketed=*/false, /*service=*/true));
  // Matrix: per scheduler the same three legs at a mid-size point.
  for (const std::string& name : schedulers) {
    add(matrix_request(name, matrix_servers, matrix_jobs, matrix_hours, true, true));
    add(matrix_request(name, matrix_servers, matrix_jobs, matrix_hours, true, false));
    add(matrix_request(name, matrix_servers, matrix_jobs, matrix_hours, false, true));
  }

  exp::RunOptions options;
  options.threads = threads;
  std::cout << "bench_largescale: " << requests.size() << " runs ("
            << exp::resolve_threads(threads) << " threads), philly point = 550 servers / "
            << "2474 GPUs / " << philly_jobs << " jobs over " << philly_hours << "h\n";
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<RunMetrics> results = exp::run_batch(requests, options);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const RunMetrics& leg_a = results[0];  // bucketed + service (default)
  const RunMetrics& leg_b = results[1];  // bucketed + legacy cold fits
  const RunMetrics& leg_c = results[2];  // linear + service
  const bool philly_service_identical = identical(*hashers[0], *hashers[1]);
  const bool philly_index_identical = identical(*hashers[0], *hashers[2]);
  const double philly_reduction = reduction(leg_a);
  const double philly_nm_reduction = nm_reduction(leg_a, leg_b);
  const double philly_fit_share = fit_share(leg_a);
  // The linear leg must agree on what a linear funnel scans, and the
  // bucketed leg's funnel accounting must cover every such candidate.
  const bool counter_consistent =
      leg_c.candidates_scanned == leg_c.candidates_linear &&
      leg_a.candidates_linear == leg_c.candidates_linear &&
      leg_a.candidates_scanned + leg_a.pindex_servers_pruned +
              leg_a.pindex_servers_bypassed ==
          leg_a.candidates_linear;
  const double speedup = leg_a.sched_overhead_ms > 0.0
                             ? leg_c.sched_overhead_ms / leg_a.sched_overhead_ms
                             : 0.0;

  std::cout << "=== philly point ===\n";
  std::cout << "  default    : " << leg_a.summary() << "\n";
  std::cout << "  legacy-fit : " << leg_b.summary() << "\n";
  std::cout << "  linear     : " << leg_c.summary() << "\n";
  std::cout << "  index_identical=" << (philly_index_identical ? "true" : "false")
            << " service_identical=" << (philly_service_identical ? "true" : "false")
            << "\n  candidates: " << leg_a.candidates_scanned << " scanned vs "
            << leg_a.candidates_linear << " linear (" << philly_reduction
            << "x reduction, gate " << reduction_gate << "x), sched-round speedup "
            << speedup << "x\n"
            << "  curve fits: " << leg_a.nm_objective_evals << " NM evals vs "
            << leg_b.nm_objective_evals << " legacy (" << philly_nm_reduction
            << "x reduction, gate " << nm_gate << "x), fit wall share "
            << philly_fit_share << " (gate " << fit_share_gate << ")\n";

  bool matrix_identical = true;
  json << "{\n  \"benchmark\": \"largescale\",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"wall_seconds\": " << wall_seconds
       << ",\n  \"philly\": {\"servers\": 550, \"gpus\": 2474, \"jobs\": " << philly_jobs
       << ", \"arrival_hours\": " << philly_hours
       << ",\n    \"index_decisions_identical\": " << (philly_index_identical ? "true" : "false")
       << ", \"service_decisions_identical\": "
       << (philly_service_identical ? "true" : "false")
       << ", \"event_stream_bytes\": " << hashers[0]->sink.bytes()
       << ", \"counter_accounting_consistent\": " << (counter_consistent ? "true" : "false")
       << ",\n    \"candidates_scanned\": " << leg_a.candidates_scanned
       << ", \"candidates_linear\": " << leg_a.candidates_linear
       << ", \"reduction_x\": " << philly_reduction
       << ", \"reduction_gate_x\": " << reduction_gate
       << ",\n    \"pindex_queries\": " << leg_a.pindex_queries
       << ", \"pindex_servers_pruned\": " << leg_a.pindex_servers_pruned
       << ", \"pindex_servers_bypassed\": " << leg_a.pindex_servers_bypassed
       << ",\n    \"ms_per_round_bucketed\": " << leg_a.sched_overhead_ms
       << ", \"ms_per_round_linear\": " << leg_c.sched_overhead_ms
       << ", \"sched_round_speedup\": " << speedup
       << ",\n    \"predictor\": {\"fits_cold\": " << leg_a.fits_cold
       << ", \"fits_warm\": " << leg_a.fits_warm
       << ", \"cache_hits\": " << leg_a.prediction_cache_hits
       << ",\n      \"nm_evals_service\": " << leg_a.nm_objective_evals
       << ", \"nm_evals_legacy\": " << leg_b.nm_objective_evals
       << ", \"nm_eval_reduction_x\": " << philly_nm_reduction
       << ", \"nm_eval_gate_x\": " << nm_gate
       << ",\n      \"fit_wall_ms\": " << leg_a.fit_wall_ms
       << ", \"fit_wall_ms_legacy\": " << leg_b.fit_wall_ms
       << ", \"run_wall_ms\": " << leg_a.run_wall_ms
       << ", \"fit_wall_share\": " << philly_fit_share
       << ", \"fit_share_gate\": " << fit_share_gate
       << "}},\n  \"scheduler_matrix\": [\n";
  for (std::size_t i = 0; i < schedulers.size(); ++i) {
    const RunMetrics& on = results[3 + 3 * i];
    const RunMetrics& legacy = results[4 + 3 * i];
    const bool service_same = identical(*hashers[3 + 3 * i], *hashers[4 + 3 * i]);
    const bool index_same = identical(*hashers[3 + 3 * i], *hashers[5 + 3 * i]);
    matrix_identical = matrix_identical && service_same && index_same;
    std::cout << "  " << schedulers[i] << ": index_identical="
              << (index_same ? "true" : "false")
              << " service_identical=" << (service_same ? "true" : "false")
              << " reduction=" << reduction(on) << "x nm_reduction="
              << nm_reduction(on, legacy) << "x\n";
    json << "    {\"scheduler\": \"" << schedulers[i]
         << "\", \"index_decisions_identical\": " << (index_same ? "true" : "false")
         << ", \"service_decisions_identical\": " << (service_same ? "true" : "false")
         << ", \"reduction_x\": " << reduction(on)
         << ", \"nm_eval_reduction_x\": " << nm_reduction(on, legacy) << "}"
         << (i + 1 < schedulers.size() ? "," : "") << "\n";
  }
  const bool all_identical =
      philly_service_identical && philly_index_identical && matrix_identical;
  const bool pass = all_identical && counter_consistent &&
                    philly_reduction >= reduction_gate && philly_nm_reduction >= nm_gate &&
                    philly_fit_share < fit_share_gate;
  json << "  ],\n  \"all_decisions_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "wrote " << out_file << " (" << wall_seconds << "s)\n";

  if (!all_identical) {
    std::cerr << "FAIL: a bucketed-index or prediction-service leg diverged from its "
                 "reference\n";
    return 1;
  }
  if (!counter_consistent) {
    std::cerr << "FAIL: funnel counter accounting inconsistent between legs\n";
    return 1;
  }
  if (philly_reduction < reduction_gate) {
    std::cerr << "FAIL: candidate reduction " << philly_reduction << "x below the "
              << reduction_gate << "x gate\n";
    return 1;
  }
  if (philly_nm_reduction < nm_gate) {
    std::cerr << "FAIL: NM objective-eval reduction " << philly_nm_reduction
              << "x below the " << nm_gate << "x gate\n";
    return 1;
  }
  if (philly_fit_share >= fit_share_gate) {
    std::cerr << "FAIL: curve-fit wall share " << philly_fit_share << " at or above the "
              << fit_share_gate << " gate\n";
    return 1;
  }
  return 0;
}
