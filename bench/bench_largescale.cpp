// Large-scale placement benchmark — the exit artifact for the bucketed
// placement index (DESIGN.md, "Scheduler hot path").
//
// Replays a Philly-scale point — 550 servers / 2474 GPUs (the trace's
// heterogeneous footprint) with a saturating arrival stream — end-to-end
// under MLF-H twice: once with the bucketed feasibility index and once
// with the linear candidate funnel. Both legs stream their JSONL event
// logs through an FNV-1a hash, so the benchmark *proves* the index changed
// no decision, and the bucketed leg's candidates_linear /
// candidates_scanned quotient is the measured candidate reduction (the
// linear leg independently cross-checks candidates_linear). A second
// stage runs every registered scheduler at a mid-size point, same
// two-leg hash comparison, so the byte-identical claim covers the whole
// registry rather than MLF-H alone.
//
// All legs execute through the shared experiment runner on the pool
// (hashes and counters are simulation-deterministic, so parallelism
// cannot change them; only sched_overhead_ms — a real-clock measurement —
// carries contention noise, and it is reported as indicative, not gated).
//
// Emits BENCH_largescale.json and exits non-zero if any leg pair
// diverges, the candidate-reduction gate fails, or the funnel accounting
// (scanned + pruned + bypassed == linear) breaks. CI runs `--smoke`
// (same fleet, shorter stream, smaller matrix) and uploads the file.
//
// Usage: bench_largescale [--smoke] [--out FILE] [--threads N]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "sim/event_log.hpp"

namespace {

using namespace mlfs;

/// Sink that FNV-1a-hashes everything written to it — compares
/// multi-million-line event streams without holding either in memory.
class HashStreamBuf : public std::streambuf {
 public:
  std::uint64_t hash() const { return hash_; }
  std::uint64_t bytes() const { return bytes_; }

 protected:
  int overflow(int ch) override {
    if (ch != traits_type::eof()) mix(static_cast<unsigned char>(ch));
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) mix(static_cast<unsigned char>(s[i]));
    return n;
  }

 private:
  void mix(unsigned char c) {
    hash_ = (hash_ ^ c) * 1099511628211ull;
    ++bytes_;
  }
  std::uint64_t hash_ = 1469598103934665603ull;
  std::uint64_t bytes_ = 0;
};

/// Per-run hashing observer bundle with stable addresses for the batch.
struct HashedRun {
  HashStreamBuf sink;
  std::unique_ptr<std::ostream> out;
  std::unique_ptr<JsonlEventLog> log;

  HashedRun() : out(std::make_unique<std::ostream>(&sink)),
                log(std::make_unique<JsonlEventLog>(*out)) {}
};

/// The Philly-scale leg: heterogeneous 550-server / 2474-GPU fleet, MLF-H,
/// arrival rate held at the saturating ~375 jobs/hour the full trace
/// averages, so the funnel is measured under sustained overload — the
/// regime the index exists for.
exp::RunRequest philly_request(std::size_t jobs, double hours, bool bucketed) {
  exp::RunRequest request;
  request.label = std::string(bucketed ? "bucketed" : "linear") + " philly-550";
  request.cluster.server_count = 550;
  request.cluster.total_gpus = 2474;
  request.cluster.gpus_per_server = 4;  // overridden by total_gpus
  request.cluster.placement_bucket_index = bucketed;
  request.trace.num_jobs = jobs;
  request.trace.duration_hours = hours;
  request.trace.seed = 2020;
  request.trace.max_gpu_request = 32;
  request.engine.seed = 2020 ^ 0xbeef;
  request.scheduler = "MLF-H";
  request.mlfs_config.heuristic_only = true;
  return request;
}

/// One mid-size matrix leg: every registered scheduler must stay
/// byte-identical with the index on.
exp::RunRequest matrix_request(const std::string& scheduler, std::size_t servers,
                               std::size_t jobs, double hours, bool bucketed) {
  exp::RunRequest request;
  request.label = std::string(bucketed ? "bucketed" : "linear") + " " + scheduler;
  request.cluster.server_count = servers;
  request.cluster.gpus_per_server = 4;
  request.cluster.placement_bucket_index = bucketed;
  request.trace.num_jobs = jobs;
  request.trace.duration_hours = hours;
  request.trace.seed = 1117;
  request.trace.max_gpu_request = 16;
  request.engine.seed = 1117 ^ 0xfeed;
  request.scheduler = scheduler;
  return request;
}

bool identical(const HashedRun& a, const HashedRun& b) {
  return a.sink.hash() == b.sink.hash() && a.sink.bytes() == b.sink.bytes() &&
         a.sink.bytes() > 0;
}

double reduction(const RunMetrics& m) {
  return m.candidates_scanned > 0
             ? static_cast<double>(m.candidates_linear) /
                   static_cast<double>(m.candidates_scanned)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_file = "BENCH_largescale.json";
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_file = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  // Full mode replays the trace's job count over its average arrival rate;
  // smoke keeps the same 550-server fleet (the gate is about scale, not a
  // toy topology) on a shorter stream so CI finishes in a few minutes.
  const std::size_t philly_jobs = smoke ? 3000 : 117000;
  const double philly_hours = smoke ? 4.0 : 280.0;
  const std::size_t matrix_servers = smoke ? 32 : 64;
  const std::size_t matrix_jobs = smoke ? 300 : 800;
  const double matrix_hours = smoke ? 4.0 : 6.0;
  // The full Philly point measures >= 120x; smoke's shorter stream spends
  // proportionally longer in the (index-unfriendly) empty-cluster fill
  // phase, so its floor is lower. Both gates sit well below measured
  // values and orders of magnitude above the ~5x a feasibility-only
  // funnel can reach.
  const double reduction_gate = smoke ? 40.0 : 100.0;

  std::ofstream json(out_file);
  if (!json) {
    std::cerr << "cannot open " << out_file << "\n";
    return 1;
  }

  const std::vector<std::string> schedulers = exp::registered_scheduler_names();

  std::vector<exp::RunRequest> requests;
  std::vector<std::unique_ptr<HashedRun>> hashers;
  auto add = [&](exp::RunRequest request) {
    hashers.push_back(std::make_unique<HashedRun>());
    request.observer = hashers.back()->log.get();
    requests.push_back(std::move(request));
  };
  add(philly_request(philly_jobs, philly_hours, /*bucketed=*/true));
  add(philly_request(philly_jobs, philly_hours, /*bucketed=*/false));
  for (const std::string& name : schedulers) {
    add(matrix_request(name, matrix_servers, matrix_jobs, matrix_hours, /*bucketed=*/true));
    add(matrix_request(name, matrix_servers, matrix_jobs, matrix_hours, /*bucketed=*/false));
  }

  exp::RunOptions options;
  options.threads = threads;
  std::cout << "bench_largescale: " << requests.size() << " runs ("
            << exp::resolve_threads(threads) << " threads), philly point = 550 servers / "
            << "2474 GPUs / " << philly_jobs << " jobs over " << philly_hours << "h\n";
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<RunMetrics> results = exp::run_batch(requests, options);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const RunMetrics& bucketed = results[0];
  const RunMetrics& linear = results[1];
  const bool philly_identical = identical(*hashers[0], *hashers[1]);
  const double philly_reduction = reduction(bucketed);
  // The linear leg must agree on what a linear funnel scans, and the
  // bucketed leg's funnel accounting must cover every such candidate.
  const bool counter_consistent =
      linear.candidates_scanned == linear.candidates_linear &&
      bucketed.candidates_linear == linear.candidates_linear &&
      bucketed.candidates_scanned + bucketed.pindex_servers_pruned +
              bucketed.pindex_servers_bypassed ==
          bucketed.candidates_linear;
  const double speedup = bucketed.sched_overhead_ms > 0.0
                             ? linear.sched_overhead_ms / bucketed.sched_overhead_ms
                             : 0.0;

  std::cout << "=== philly point ===\n";
  std::cout << "  bucketed: " << bucketed.summary() << "\n";
  std::cout << "  linear  : " << linear.summary() << "\n";
  std::cout << "  decisions_identical=" << (philly_identical ? "true" : "false")
            << " candidates: " << bucketed.candidates_scanned << " scanned vs "
            << bucketed.candidates_linear << " linear (" << philly_reduction
            << "x reduction, gate " << reduction_gate << "x), sched-round speedup "
            << speedup << "x\n";

  bool matrix_identical = true;
  json << "{\n  \"benchmark\": \"largescale\",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"wall_seconds\": " << wall_seconds
       << ",\n  \"philly\": {\"servers\": 550, \"gpus\": 2474, \"jobs\": " << philly_jobs
       << ", \"arrival_hours\": " << philly_hours
       << ",\n    \"decisions_identical\": " << (philly_identical ? "true" : "false")
       << ", \"event_stream_bytes\": " << hashers[0]->sink.bytes()
       << ", \"counter_accounting_consistent\": " << (counter_consistent ? "true" : "false")
       << ",\n    \"candidates_scanned\": " << bucketed.candidates_scanned
       << ", \"candidates_linear\": " << bucketed.candidates_linear
       << ", \"reduction_x\": " << philly_reduction
       << ", \"reduction_gate_x\": " << reduction_gate
       << ",\n    \"pindex_queries\": " << bucketed.pindex_queries
       << ", \"pindex_servers_pruned\": " << bucketed.pindex_servers_pruned
       << ", \"pindex_servers_bypassed\": " << bucketed.pindex_servers_bypassed
       << ",\n    \"ms_per_round_bucketed\": " << bucketed.sched_overhead_ms
       << ", \"ms_per_round_linear\": " << linear.sched_overhead_ms
       << ", \"sched_round_speedup\": " << speedup << "},\n  \"scheduler_matrix\": [\n";
  for (std::size_t i = 0; i < schedulers.size(); ++i) {
    const RunMetrics& on = results[2 + 2 * i];
    const bool same = identical(*hashers[2 + 2 * i], *hashers[3 + 2 * i]);
    matrix_identical = matrix_identical && same;
    std::cout << "  " << schedulers[i] << ": decisions_identical=" << (same ? "true" : "false")
              << " reduction=" << reduction(on) << "x\n";
    json << "    {\"scheduler\": \"" << schedulers[i]
         << "\", \"decisions_identical\": " << (same ? "true" : "false")
         << ", \"reduction_x\": " << reduction(on) << "}"
         << (i + 1 < schedulers.size() ? "," : "") << "\n";
  }
  const bool all_identical = philly_identical && matrix_identical;
  const bool pass =
      all_identical && counter_consistent && philly_reduction >= reduction_gate;
  json << "  ],\n  \"all_decisions_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "wrote " << out_file << " (" << wall_seconds << "s)\n";

  if (!all_identical) {
    std::cerr << "FAIL: bucketed placement index diverged from the linear funnel\n";
    return 1;
  }
  if (!counter_consistent) {
    std::cerr << "FAIL: funnel counter accounting inconsistent between legs\n";
    return 1;
  }
  if (philly_reduction < reduction_gate) {
    std::cerr << "FAIL: candidate reduction " << philly_reduction << "x below the "
              << reduction_gate << "x gate\n";
    return 1;
  }
  return 0;
}
