// Robustness benchmark — schedulers under machine churn (fault-injection
// subsystem; beyond the paper, which evaluates a benign cluster).
//
// Sweeps the registered failure-rate points (crashes per server per week,
// exponential MTBF/MTTR) on the Fig. 4 testbed workload and compares the
// MLFS family against representative baselines on: average JCT, deadline
// ratio, goodput (useful / executed iteration work), work lost to
// failures, and mean job recovery time.
//
// Usage: bench_fault_recovery [--quick] [--csv-dir DIR] [--threads N]
#include <cstring>
#include <iostream>

#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace mlfs;
  bool quick = false;
  std::string csv_dir;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  exp::Scenario base = exp::testbed_scenario();
  if (quick) base.trace.num_jobs = 150;
  const std::size_t jobs = base.trace.num_jobs;
  const std::vector<std::string> schedulers = {"MLFS", "MLF-H", "Tiresias", "SLAQ",
                                               "TensorFlow"};
  const auto sweep = exp::failure_rate_sweep();

  std::cout << "=== Fault recovery: schedulers under increasing failure rates ===\n"
            << "testbed " << base.cluster.server_count << "x" << base.cluster.gpus_per_server
            << " GPUs, " << jobs << " jobs; MTTR "
            << 0.5 << "h, checkpoint every 5 iterations\n\n";

  std::vector<std::string> header = {"scheduler"};
  for (const auto& pt : sweep) header.push_back(pt.label);
  Table jct("Average JCT (minutes) vs failure rate");
  Table deadline("Deadline-met ratio vs failure rate");
  Table goodput("Goodput (useful/executed iteration work) vs failure rate");
  Table lost("Work lost to failures (GPU-hours) vs failure rate");
  Table recovery("Mean job recovery time (seconds) vs failure rate");
  for (Table* t : {&jct, &deadline, &goodput, &lost, &recovery}) t->set_header(header);

  // Shared runner over the full (scheduler × failure-rate) grid; results
  // land by index so the tables are identical for any --threads.
  std::vector<exp::RunRequest> requests;
  for (const std::string& name : schedulers) {
    for (const auto& pt : sweep) {
      exp::Scenario s = base;
      exp::set_failure_rate(s, pt.crashes_per_server_week);
      exp::RunRequest request = exp::make_request(s, name, jobs);
      request.label = pt.label;
      requests.push_back(std::move(request));
    }
  }
  exp::RunOptions options;
  options.threads = threads;
  options.verbose = false;
  const std::vector<RunMetrics> runs = exp::run_batch(requests, options);

  for (std::size_t si = 0; si < schedulers.size(); ++si) {
    const std::string& name = schedulers[si];
    std::vector<double> jct_row, dl_row, gp_row, lost_row, rec_row;
    for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
      const RunMetrics& m = runs[si * sweep.size() + pi];
      std::cout << "  [" << sweep[pi].label << "] " << m.summary() << '\n';
      jct_row.push_back(m.average_jct_minutes());
      dl_row.push_back(m.deadline_ratio);
      gp_row.push_back(m.goodput);
      lost_row.push_back(m.work_lost_gpu_seconds / 3600.0);
      rec_row.push_back(m.mean_recovery_seconds);
    }
    jct.add_row(name, jct_row, 1);
    deadline.add_row(name, dl_row, 3);
    goodput.add_row(name, gp_row, 3);
    lost.add_row(name, lost_row, 2);
    recovery.add_row(name, rec_row, 0);
  }
  std::cout << '\n';
  for (Table* t : {&jct, &deadline, &goodput, &lost, &recovery}) {
    t->render(std::cout);
    std::cout << '\n';
  }

  if (!csv_dir.empty()) {
    exp::write_csv(jct, csv_dir + "/fault_jct.csv");
    exp::write_csv(deadline, csv_dir + "/fault_deadline.csv");
    exp::write_csv(goodput, csv_dir + "/fault_goodput.csv");
    exp::write_csv(lost, csv_dir + "/fault_work_lost.csv");
    exp::write_csv(recovery, csv_dir + "/fault_recovery_time.csv");
  }
  std::cout << "expected shape: JCT grows and goodput falls as the failure rate rises;\n"
               "waiting-aware schedulers (MLFS family, Tiresias) re-place crash victims\n"
               "faster than fair sharing, so their recovery time and deadline ratio\n"
               "degrade more gracefully.\n";
  return 0;
}
