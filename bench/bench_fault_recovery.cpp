// Robustness benchmark — schedulers under machine churn (fault-injection
// subsystem; beyond the paper, which evaluates a benign cluster).
//
// Phase 1 sweeps the registered failure-rate points (crashes per server
// per week, exponential MTBF/MTTR) on the Fig. 4 testbed workload and
// compares the MLFS family against representative baselines on: average
// JCT, deadline ratio, goodput (useful / executed iteration work), work
// lost to failures, and mean job recovery time.
//
// Phase 2 measures the failure-aware recovery policies (sim/health.hpp):
// the same sweep on a heterogeneous-reliability fleet (a flaky tail of
// servers crashing at a multiple of the base rate), MLF-H with naive
// recovery vs MLF-H with quarantine + retry backoff + fault-domain
// placement. Emits BENCH_fault_recovery.json and exits nonzero unless
// every churn point shows no-higher wasted work and no-worse goodput with
// the policies on.
//
// Usage: bench_fault_recovery [--quick|--smoke] [--csv-dir DIR]
//                             [--out FILE] [--threads N]
#include <cstring>
#include <fstream>
#include <iostream>

#include "exp/runner.hpp"

namespace {

void emit_point(std::ostream& os, const mlfs::RunMetrics& m) {
  os << "{\"avg_jct_minutes\": " << m.average_jct_minutes()
     << ", \"deadline_ratio\": " << m.deadline_ratio << ", \"goodput\": " << m.goodput
     << ", \"work_lost_gpu_hours\": " << m.work_lost_gpu_seconds / 3600.0
     << ", \"server_failures\": " << m.server_failures
     << ", \"crash_evictions\": " << m.crash_evictions
     << ", \"quarantines\": " << m.quarantines
     << ", \"task_retries\": " << m.task_retries
     << ", \"jobs_failed_permanent\": " << m.jobs_failed_permanent
     << ", \"crashes_absorbed\": " << m.crashes_absorbed
     << ", \"wasted_work_avoided_gpu_hours\": " << m.wasted_work_avoided_gpu_seconds / 3600.0
     << "}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlfs;
  bool quick = false;
  std::string csv_dir;
  std::string out_file = "BENCH_fault_recovery.json";
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0 || std::strcmp(argv[i], "--smoke") == 0)
      quick = true;
    if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) csv_dir = argv[++i];
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_file = argv[++i];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
  }

  exp::Scenario base = exp::testbed_scenario();
  if (quick) base.trace.num_jobs = 150;
  const std::size_t jobs = base.trace.num_jobs;
  const std::vector<std::string> schedulers = {"MLFS", "MLF-H", "Tiresias", "SLAQ",
                                               "TensorFlow"};
  const auto sweep = exp::failure_rate_sweep();

  std::cout << "=== Fault recovery: schedulers under increasing failure rates ===\n"
            << "testbed " << base.cluster.server_count << "x" << base.cluster.gpus_per_server
            << " GPUs, " << jobs << " jobs; MTTR "
            << 0.5 << "h, checkpoint every 5 iterations\n\n";

  std::vector<std::string> header = {"scheduler"};
  for (const auto& pt : sweep) header.push_back(pt.label);
  Table jct("Average JCT (minutes) vs failure rate");
  Table deadline("Deadline-met ratio vs failure rate");
  Table goodput("Goodput (useful/executed iteration work) vs failure rate");
  Table lost("Work lost to failures (GPU-hours) vs failure rate");
  Table recovery("Mean job recovery time (seconds) vs failure rate");
  for (Table* t : {&jct, &deadline, &goodput, &lost, &recovery}) t->set_header(header);

  // Shared runner over the full (scheduler × failure-rate) grid; results
  // land by index so the tables are identical for any --threads.
  std::vector<exp::RunRequest> requests;
  for (const std::string& name : schedulers) {
    for (const auto& pt : sweep) {
      exp::Scenario s = base;
      exp::set_failure_rate(s, pt.crashes_per_server_week);
      exp::RunRequest request = exp::make_request(s, name, jobs);
      request.label = pt.label;
      requests.push_back(std::move(request));
    }
  }
  exp::RunOptions options;
  options.threads = threads;
  options.verbose = false;
  const std::vector<RunMetrics> runs = exp::run_batch(requests, options);

  for (std::size_t si = 0; si < schedulers.size(); ++si) {
    const std::string& name = schedulers[si];
    std::vector<double> jct_row, dl_row, gp_row, lost_row, rec_row;
    for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
      const RunMetrics& m = runs[si * sweep.size() + pi];
      std::cout << "  [" << sweep[pi].label << "] " << m.summary() << '\n';
      jct_row.push_back(m.average_jct_minutes());
      dl_row.push_back(m.deadline_ratio);
      gp_row.push_back(m.goodput);
      lost_row.push_back(m.work_lost_gpu_seconds / 3600.0);
      rec_row.push_back(m.mean_recovery_seconds);
    }
    jct.add_row(name, jct_row, 1);
    deadline.add_row(name, dl_row, 3);
    goodput.add_row(name, gp_row, 3);
    lost.add_row(name, lost_row, 2);
    recovery.add_row(name, rec_row, 0);
  }
  std::cout << '\n';
  for (Table* t : {&jct, &deadline, &goodput, &lost, &recovery}) {
    t->render(std::cout);
    std::cout << '\n';
  }

  if (!csv_dir.empty()) {
    exp::write_csv(jct, csv_dir + "/fault_jct.csv");
    exp::write_csv(deadline, csv_dir + "/fault_deadline.csv");
    exp::write_csv(goodput, csv_dir + "/fault_goodput.csv");
    exp::write_csv(lost, csv_dir + "/fault_work_lost.csv");
    exp::write_csv(recovery, csv_dir + "/fault_recovery_time.csv");
  }

  // ---- Phase 2: recovery policies vs naive recovery (MLF-H) -------------
  // A flaky tail (the last quarter of the fleet crashing at 8x the base
  // rate) is the workload quarantining is built for: the policies should
  // absorb the tail's churn without throttling the healthy majority.
  std::cout << "=== Recovery policies vs naive recovery (MLF-H, flaky tail) ===\n";
  std::vector<exp::RunRequest> policy_requests;
  for (const bool with_policies : {false, true}) {
    for (const auto& pt : sweep) {
      exp::Scenario s = base;
      exp::set_failure_rate(s, pt.crashes_per_server_week);
      exp::set_flaky_servers(s, 0.25, 8.0);
      if (with_policies) exp::set_recovery_policies(s, /*retry_budget=*/0);
      exp::RunRequest request = exp::make_request(s, "MLF-H", jobs);
      request.label = std::string(with_policies ? "policy" : "naive") + " " + pt.label;
      policy_requests.push_back(std::move(request));
    }
  }
  const std::vector<RunMetrics> policy_runs = exp::run_batch(policy_requests, options);

  std::ofstream json(out_file);
  if (!json) {
    std::cerr << "cannot open " << out_file << "\n";
    return 1;
  }
  json << "{\n  \"benchmark\": \"fault_recovery\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"scheduler\": \"MLF-H\","
       << "\n  \"flaky_fraction\": 0.25,\n  \"flaky_multiplier\": 8.0,\n  \"points\": [\n";

  // Goodput is a ratio of sums over thousands of iterations; allow a small
  // slack so a borderline point does not flap CI.
  constexpr double kGoodputSlack = 0.02;
  bool all_pass = true;
  for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
    const RunMetrics& naive = policy_runs[pi];
    const RunMetrics& policy = policy_runs[sweep.size() + pi];
    std::cout << "  [" << sweep[pi].label << "]\n"
              << "    naive : " << naive.summary() << "\n"
              << "    policy: " << policy.summary() << "\n";
    const bool churn = sweep[pi].crashes_per_server_week > 0.0;
    const bool wasted_ok =
        !churn || policy.work_lost_gpu_seconds <= naive.work_lost_gpu_seconds;
    const bool goodput_ok = !churn || policy.goodput >= naive.goodput - kGoodputSlack;
    if (churn) {
      std::cout << "    wasted_work_no_higher=" << (wasted_ok ? "true" : "false")
                << " (" << naive.work_lost_gpu_seconds / 3600.0 << " -> "
                << policy.work_lost_gpu_seconds / 3600.0 << " GPU-h)"
                << " goodput_no_worse=" << (goodput_ok ? "true" : "false") << " ("
                << naive.goodput << " -> " << policy.goodput << ")\n";
    }
    all_pass = all_pass && wasted_ok && goodput_ok;

    json << "    {\"label\": \"" << sweep[pi].label
         << "\", \"crashes_per_server_week\": " << sweep[pi].crashes_per_server_week
         << ",\n     \"naive\": ";
    emit_point(json, naive);
    json << ",\n     \"policy\": ";
    emit_point(json, policy);
    json << ",\n     \"wasted_work_no_higher\": " << (wasted_ok ? "true" : "false")
         << ", \"goodput_no_worse\": " << (goodput_ok ? "true" : "false") << "}"
         << (pi + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"goodput_slack\": " << kGoodputSlack
       << ",\n  \"all_points_pass\": " << (all_pass ? "true" : "false") << "\n}\n";
  std::cout << "wrote " << out_file << "\n";

  std::cout << "expected shape: JCT grows and goodput falls as the failure rate rises;\n"
               "with the recovery policies on, the flaky tail is quarantined after its\n"
               "first crashes, so wasted work drops (crashes land on empty servers) at\n"
               "no goodput cost.\n";
  if (!all_pass) {
    std::cerr << "FAIL: recovery policies did not beat naive recovery on every churn point\n";
    return 1;
  }
  return 0;
}
