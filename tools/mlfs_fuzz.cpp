// mlfs_fuzz — property-based fuzzer for the simulator. Draws N random
// scenarios (topology, DAG workload, fault process, scheduler) from a
// master seed, runs each one under the invariant auditor (sim/audit.hpp),
// and on failure greedily shrinks the case while the same invariant keeps
// failing. Each (shrunk) failure is written as a replayable key=value
// artifact that `mlfs_fuzz --replay FILE` re-executes.
//
// `--selftest` flips on the deliberate slot-leak bug
// (ClusterConfig::debug_slot_leak) in every case, proving end-to-end that
// the harness catches, shrinks, and reports a real conservation bug.
//
// Exit codes: 0 = all cases clean (for --selftest: bug caught), 1 =
// failures found (for --selftest: bug missed), 2 = usage error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/fuzz.hpp"
#include "exp/registry.hpp"

namespace {

using namespace mlfs;

struct Options {
  std::uint64_t seed = 7;
  std::size_t runs = 100;
  std::vector<std::string> schedulers;  // empty = all registered
  bool determinism = false;
  bool selftest = false;
  unsigned threads = 0;
  int shrink_rounds = 8;
  std::size_t max_failures = 3;
  std::string replay_file;
  std::string out_dir;
  bool quiet = false;
};

void print_usage() {
  std::cout <<
      "mlfs_fuzz — audited property-based fuzzing of the MLFS simulator\n\n"
      "  --runs N             random scenarios to run (default 100)\n"
      "  --seed S             master seed; case i is a pure function of (S, i)\n"
      "  --scheduler NAME     restrict to NAME (repeatable; default: every\n"
      "                       registered scheduler, cycled across cases)\n"
      "  --determinism        run every case twice and require bitwise-equal\n"
      "                       metrics (seed stability)\n"
      "  --threads N          concurrent cases (default 0 = hardware concurrency;\n"
      "                       results do not depend on N)\n"
      "  --shrink-rounds N    max greedy shrink passes per failure (default 8)\n"
      "  --max-failures N     stop collecting failures after N (default 3)\n"
      "  --out-dir DIR        write each shrunk failure as DIR/fuzz-<seed>-<i>.case\n"
      "  --replay FILE        re-run one serialized case file and exit\n"
      "  --selftest           inject the known slot-leak bug into every case;\n"
      "                       exit 0 iff the auditor catches it\n"
      "  --quiet              suppress per-case progress\n"
      "  --list-schedulers    list registered schedulers and exit\n";
}

int replay(const Options& options) {
  std::ifstream in(options.replay_file);
  if (!in) {
    std::cerr << "cannot open " << options.replay_file << "\n";
    return 2;
  }
  const exp::FuzzCase c = exp::parse_fuzz_case(in);
  std::cout << exp::describe(c) << "\n";
  const auto failure = exp::run_fuzz_case(c, options.determinism);
  if (!failure) {
    std::cout << "replay: PASS (no invariant violation)\n";
    return 0;
  }
  std::cout << "replay: FAIL"
            << (failure->invariant.empty() ? "" : " [" + failure->invariant + "]") << "\n"
            << failure->what << "\n";
  return 1;
}

void write_artifact(const std::string& dir, const exp::ShrinkResult& r) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open() reports
  const exp::FuzzCase& c = r.minimal;
  const std::string path = dir + "/fuzz-" + std::to_string(c.master_seed) + "-" +
                           std::to_string(c.index) + ".case";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  out << "# " << exp::describe(c) << "\n"
      << "# invariant: " << (r.failure.invariant.empty() ? "<exception>" : r.failure.invariant)
      << "\n"
      << "# replay: mlfs_fuzz --replay " << path << "\n"
      << exp::serialize(c);
  std::cout << "  artifact: " << path << "\n";
}

bool parse(int argc, char** argv, Options& options, int& exit_code) {
  exit_code = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        exit_code = 2;
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    } else if (arg == "--list" || arg == "--list-schedulers") {
      for (const auto& name : exp::registered_scheduler_names()) std::cout << name << "\n";
      return false;
    } else if (arg == "--runs") {
      const char* v = next("--runs");
      if (!v) return false;
      options.runs = std::stoul(v);
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      options.seed = std::stoull(v);
    } else if (arg == "--scheduler") {
      const char* v = next("--scheduler");
      if (!v) return false;
      options.schedulers.emplace_back(v);
    } else if (arg == "--determinism") {
      options.determinism = true;
    } else if (arg == "--selftest") {
      options.selftest = true;
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (!v) return false;
      options.threads = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--shrink-rounds") {
      const char* v = next("--shrink-rounds");
      if (!v) return false;
      options.shrink_rounds = std::stoi(v);
    } else if (arg == "--max-failures") {
      const char* v = next("--max-failures");
      if (!v) return false;
      options.max_failures = std::stoul(v);
    } else if (arg == "--out-dir") {
      const char* v = next("--out-dir");
      if (!v) return false;
      options.out_dir = v;
    } else if (arg == "--replay") {
      const char* v = next("--replay");
      if (!v) return false;
      options.replay_file = v;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      print_usage();
      exit_code = 2;
      return false;
    }
  }
  for (const auto& name : options.schedulers) {
    if (!exp::is_registered_scheduler(name)) {
      std::cerr << "unknown scheduler: " << name << " (see --list-schedulers)\n";
      exit_code = 2;
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    int exit_code = 0;
    if (!parse(argc, argv, options, exit_code)) return exit_code;
    if (!options.replay_file.empty()) return replay(options);

    exp::FuzzSweepOptions sweep;
    sweep.seed = options.seed;
    sweep.runs = options.runs;
    sweep.schedulers = options.schedulers;
    sweep.check_determinism = options.determinism;
    sweep.inject_slot_leak = options.selftest;
    sweep.shrink_rounds = options.shrink_rounds;
    sweep.max_failures = options.max_failures;
    sweep.threads = options.threads;
    if (!options.quiet) {
      sweep.progress = [](std::size_t, const exp::FuzzCase& c, bool failed) {
        std::cout << (failed ? "FAIL " : "ok   ") << exp::describe(c) << "\n";
      };
    }

    const exp::FuzzSweepOutcome outcome = exp::run_fuzz_sweep(sweep);
    std::cout << "\n" << outcome.runs << " cases, " << outcome.failures.size()
              << " failure(s)\n";
    for (const exp::ShrinkResult& r : outcome.failures) {
      std::cout << "\nFAILURE ["
                << (r.failure.invariant.empty() ? "<exception>" : r.failure.invariant)
                << "] shrunk from case " << r.failure.failing_case.master_seed << "/"
                << r.failure.failing_case.index << " (" << r.accepted << "/" << r.attempts
                << " transforms accepted)\n"
                << "  " << exp::describe(r.minimal) << "\n"
                << "  " << r.failure.what << "\n"
                << "  replay with --seed/--index via the serialized case:\n";
      std::istringstream dump(exp::serialize(r.minimal));
      for (std::string line; std::getline(dump, line);) std::cout << "    " << line << "\n";
      if (!options.out_dir.empty()) write_artifact(options.out_dir, r);
    }

    if (options.selftest) {
      // Self-test succeeds iff the injected bug was caught as a
      // conservation violation.
      bool caught = false;
      for (const exp::ShrinkResult& r : outcome.failures) {
        if (r.failure.invariant == "server-usage" || r.failure.invariant == "slot-conservation") {
          caught = true;
        }
      }
      std::cout << (caught ? "\nselftest: injected slot leak caught\n"
                           : "\nselftest: injected slot leak NOT caught\n");
      return caught ? 0 : 1;
    }
    return outcome.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
