// Crash-kill harness for the snapshot/restore subsystem (sim/snapshot.hpp,
// SimEngine::{save,restore}_snapshot).
//
// Each trial runs a faulty, recovery-enabled, stride-1-audited scenario
// uninterrupted to get the reference event-stream hash and metrics, then
// kills an identical run at a random event boundary, restores from the last
// snapshot and replays to completion. The resumed run must be byte-identical
// (event_stream_hash + every deterministic RunMetrics field).
//
// Two kill modes:
//   * in-process (default): the interrupted engine is snapshotted at the
//     kill event and destroyed mid-run (exp::check_restore_equivalence) —
//     fast, no filesystem.
//   * --sigkill: the run happens in a forked child that snapshots to disk on
//     an event stride (atomic tmp+rename) and raise(SIGKILL)s itself at the
//     kill event — no destructors, no stream flush, a genuine crash. The
//     parent verifies the child died by SIGKILL, restores from the newest
//     complete snapshot and replays. This is the CI crash-restore gate.
//
// --journal switches to the zero-loss durable mode (exp/durable.hpp): the
// last --stream-jobs trace jobs are withheld from the engine and streamed
// into it live (SimEngine::inject_job), every injection is written ahead to
// a per-segment journal, and recovery is snapshot + journal replay. The
// SIGKILL lands at a *random* event index — not a snapshot boundary — and
// the recovered run must still be byte-identical (event_stream_hash and
// every deterministic RunMetrics field) to a run that never crashed,
// streamed arrivals included. This is the CI crash-torture gate.
//
// Usage: mlfs_crashtest [--scheduler NAME] [--trials N] [--seed S]
//                       [--stride N] [--sigkill] [--dir D] [--list]
//                       [--journal] [--stream-jobs N] [--fsync every|group|off]
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <algorithm>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "exp/durable.hpp"
#include "exp/registry.hpp"
#include "exp/restore_check.hpp"
#include "exp/runner.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "workload/trace.hpp"

namespace {

using namespace mlfs;

struct Options {
  std::string scheduler = "MLFS";
  int trials = 3;
  std::uint64_t seed = 7;
  std::uint64_t stride = 200;  ///< events between on-disk snapshots (--sigkill)
  bool sigkill = false;
  std::string dir = "crashtest-snapshots";

  // Zero-loss durable mode (--journal).
  bool journal = false;
  std::size_t stream_jobs = 4;  ///< trace jobs withheld and streamed in live
  FsyncPolicy fsync = FsyncPolicy::GroupCommit;

  // Internal child mode (spawned by --sigkill trials).
  bool child = false;
  std::uint64_t kill_at = 0;
};

void print_usage() {
  std::cout <<
      "mlfs_crashtest — kill a run at a random event boundary, restore from\n"
      "the last snapshot and demand a byte-identical resume.\n\n"
      "  --scheduler NAME  scheduler under test (default MLFS); --list to enumerate\n"
      "  --trials N        kill points per invocation (default 3)\n"
      "  --seed S          seed for the kill-point draw (default 7)\n"
      "  --stride N        events between on-disk snapshots in --sigkill mode\n"
      "                    (default 200)\n"
      "  --sigkill         crash a real subprocess with SIGKILL instead of the\n"
      "                    in-process abort\n"
      "  --dir D           snapshot directory for --sigkill (default\n"
      "                    ./crashtest-snapshots, wiped per trial)\n"
      "  --journal         zero-loss durable mode: stream the last --stream-jobs\n"
      "                    trace jobs into the live engine, journal every\n"
      "                    injection write-ahead, kill at a random event index\n"
      "                    and recover via snapshot + journal replay\n"
      "  --stream-jobs N   jobs withheld from the start set and streamed in\n"
      "                    (default 4; needs --journal)\n"
      "  --fsync P         journal fsync policy: every | group | off\n"
      "                    (default group; needs --journal)\n";
}

bool parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    } else if (arg == "--list") {
      for (const auto& name : exp::registered_scheduler_names()) std::cout << name << "\n";
      return false;
    } else if (arg == "--scheduler") {
      const char* v = next("--scheduler");
      if (!v) return false;
      options.scheduler = v;
    } else if (arg == "--trials") {
      const char* v = next("--trials");
      if (!v) return false;
      options.trials = std::stoi(v);
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      options.seed = std::stoull(v);
    } else if (arg == "--stride") {
      const char* v = next("--stride");
      if (!v) return false;
      options.stride = std::stoull(v);
    } else if (arg == "--sigkill") {
      options.sigkill = true;
    } else if (arg == "--dir") {
      const char* v = next("--dir");
      if (!v) return false;
      options.dir = v;
    } else if (arg == "--journal") {
      options.journal = true;
    } else if (arg == "--stream-jobs") {
      const char* v = next("--stream-jobs");
      if (!v) return false;
      options.stream_jobs = std::stoul(v);
    } else if (arg == "--fsync") {
      const char* v = next("--fsync");
      if (!v) return false;
      const std::string policy = v;
      if (policy == "every") {
        options.fsync = FsyncPolicy::EveryRecord;
      } else if (policy == "group") {
        options.fsync = FsyncPolicy::GroupCommit;
      } else if (policy == "off") {
        options.fsync = FsyncPolicy::Off;
      } else {
        std::cerr << "--fsync takes every | group | off\n";
        return false;
      }
    } else if (arg == "--child") {
      options.child = true;
    } else if (arg == "--kill-at") {
      const char* v = next("--kill-at");
      if (!v) return false;
      options.kill_at = std::stoull(v);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (options.stride == 0) {
    std::cerr << "--stride must be positive\n";
    return false;
  }
  return true;
}

/// The scenario every trial runs: small cluster, server faults + task kills,
/// full recovery policies, invariant auditor at stride 1 — mirrors the
/// restore-determinism test so the CLI exercises the same acceptance gate.
exp::RunRequest crash_request(const Options& options) {
  exp::RunRequest r;
  r.label = "crashtest-" + options.scheduler;
  r.cluster.server_count = 4;
  r.cluster.gpus_per_server = 4;
  r.cluster.servers_per_rack = 2;
  r.cluster.slow_server_fraction = 0.25;
  r.engine.seed = 31;
  r.engine.max_sim_time = hours(72.0);
  r.engine.straggler_probability = 0.01;
  r.engine.straggler_replicas = 1;
  r.engine.fault.server_mtbf_hours = 24.0;
  r.engine.fault.server_mttr_hours = 0.5;
  r.engine.fault.task_kill_probability = 0.002;
  r.engine.recovery.enabled = true;
  r.engine.recovery.quarantine_enabled = true;
  r.engine.recovery.retry_backoff_enabled = true;
  r.engine.audit.enabled = true;
  r.engine.audit.stride = 1;
  r.trace.num_jobs = 20;
  r.trace.duration_hours = 2.0;
  r.trace.seed = 77;
  r.trace.max_gpu_request = 8;
  r.scheduler = options.scheduler;
  r.mlfs_config.rl.warmup_samples = 100;
  return r;
}

exp::DurableConfig durable_config(const Options& options) {
  exp::DurableConfig config;
  config.dir = options.dir;
  config.snapshot_stride = options.stride;
  config.fsync = options.fsync;
  return config;
}

const char* fsync_flag(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::EveryRecord: return "every";
    case FsyncPolicy::GroupCommit: return "group";
    case FsyncPolicy::Off: return "off";
  }
  return "group";
}

/// Child body for --journal --sigkill: run the durable session up to the kill
/// event, then die by a real SIGKILL. The journal sink is unbuffered (one
/// write(2) per record), so the on-disk state is exactly a crash at that
/// event index — no destructors run, nothing left to flush.
int run_journal_child(const Options& options) {
  exp::RunRequest request = crash_request(options);
  const auto script = exp::split_streamed_tail(request, options.stream_jobs);
  exp::DurableConfig config = durable_config(options);
  config.halt_at_event = options.kill_at;
  const exp::DurableResult result = exp::run_durable(request, script, config);
  if (result.halted) raise(SIGKILL);
  std::cerr << "child completed before kill_at=" << options.kill_at << "\n";
  return 3;
}

/// One zero-loss trial: crash a durable run at `kill_at` (forked SIGKILL or
/// in-process halt), recover in a second session via snapshot + journal
/// replay, and demand byte-identity with the never-crashed reference.
bool run_journal_trial(const Options& options, const std::string& self_exe,
                       std::uint64_t kill_at, const exp::RunRequest& request,
                       const std::vector<exp::ScriptedArrivalSource::Entry>& script,
                       const RunMetrics& reference) {
  const std::filesystem::path dir = options.dir;
  std::filesystem::remove_all(dir);

  if (options.sigkill) {
    const pid_t pid = fork();
    if (pid < 0) throw ContractViolation("fork failed");
    if (pid == 0) {
      execl(self_exe.c_str(), self_exe.c_str(), "--journal", "--child", "--kill-at",
            std::to_string(kill_at).c_str(), "--scheduler", options.scheduler.c_str(),
            "--stride", std::to_string(options.stride).c_str(), "--stream-jobs",
            std::to_string(options.stream_jobs).c_str(), "--fsync", fsync_flag(options.fsync),
            "--dir", dir.string().c_str(), static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    int status = 0;
    if (waitpid(pid, &status, 0) != pid) throw ContractViolation("waitpid failed");
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      std::cerr << "  child did not die by SIGKILL (status=" << status << ")\n";
      return false;
    }
  } else {
    exp::DurableConfig crashed = durable_config(options);
    crashed.halt_at_event = kill_at;
    if (!exp::run_durable(request, script, crashed).halted) {
      std::cerr << "  durable run completed before kill_at=" << kill_at << "\n";
      return false;
    }
  }

  const exp::DurableResult recovered = exp::run_durable(request, script, durable_config(options));
  std::filesystem::remove_all(dir);
  if (!recovered.recovered) {
    std::cerr << "  recovery did not resume from a snapshot\n";
    return false;
  }
  std::cerr << "  killed at event " << kill_at << ", resumed from snapshot at event "
            << recovered.resume_event << ", replayed " << recovered.records_replayed
            << " journaled arrivals" << (recovered.torn_tail_dropped ? " (torn tail dropped)" : "")
            << "\n";
  const bool ok = deterministic_equal(reference, recovered.metrics) &&
                  reference.event_stream_hash == recovered.metrics.event_stream_hash;
  if (!ok) {
    std::cerr << "  ZERO-LOSS MISMATCH\n    reference: hash=" << std::hex
              << reference.event_stream_hash << std::dec << " " << reference.summary()
              << "\n    recovered: hash=" << std::hex << recovered.metrics.event_stream_hash
              << std::dec << " " << recovered.metrics.summary() << "\n";
  }
  return ok;
}

/// Atomic snapshot write: crash mid-write leaves a *.tmp the restore scan
/// ignores, never a truncated snap-*.bin.
void write_snapshot_atomic(const SimEngine& engine, const std::filesystem::path& dir,
                           std::uint64_t events) {
  const std::filesystem::path tmp = dir / ("snap-" + std::to_string(events) + ".tmp");
  const std::filesystem::path final_path = dir / ("snap-" + std::to_string(events) + ".bin");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw ContractViolation("cannot write snapshot " + tmp.string());
    engine.save_snapshot(out);
    out.flush();
    if (!out) throw ContractViolation("short write on snapshot " + tmp.string());
  }
  std::filesystem::rename(tmp, final_path);
}

/// Child body for --sigkill: run the scenario, snapshot on the stride, then
/// die by a real SIGKILL at the kill event — no unwinding, no flush.
int run_child(const Options& options) {
  exp::EngineBundle bundle = exp::build_engine(crash_request(options));
  SimEngine& engine = *bundle.engine;
  std::filesystem::create_directories(options.dir);
  write_snapshot_atomic(engine, options.dir, 0);  // guarantees a restore point
  while (engine.step()) {
    if (engine.events_processed() % options.stride == 0) {
      write_snapshot_atomic(engine, options.dir, engine.events_processed());
    }
    // No snapshot at the kill point itself: the restore must come from the
    // last *stride* snapshot and replay the gap, like a real crash.
    if (engine.events_processed() >= options.kill_at) raise(SIGKILL);
  }
  // Only reachable if the run finished before the kill point — trial bug.
  std::cerr << "child completed before kill_at=" << options.kill_at << "\n";
  return 3;
}

/// Newest complete snapshot in `dir` (complete by construction: only fully
/// written files are renamed to *.bin).
std::filesystem::path newest_snapshot(const std::filesystem::path& dir) {
  std::filesystem::path best;
  std::uint64_t best_events = 0;
  bool found = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0 || entry.path().extension() != ".bin") continue;
    const std::uint64_t events = std::stoull(name.substr(5));
    if (!found || events >= best_events) {
      best = entry.path();
      best_events = events;
      found = true;
    }
  }
  if (!found) throw ContractViolation("no complete snapshot in " + dir.string());
  return best;
}

bool run_sigkill_trial(const Options& options, const std::string& self_exe,
                       std::uint64_t kill_at, const RunMetrics& reference) {
  const std::filesystem::path dir = options.dir;
  std::filesystem::remove_all(dir);

  const pid_t pid = fork();
  if (pid < 0) throw ContractViolation("fork failed");
  if (pid == 0) {
    execl(self_exe.c_str(), self_exe.c_str(), "--child", "--kill-at",
          std::to_string(kill_at).c_str(), "--scheduler", options.scheduler.c_str(),
          "--stride", std::to_string(options.stride).c_str(), "--dir",
          dir.string().c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) throw ContractViolation("waitpid failed");
  if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
    std::cerr << "  child did not die by SIGKILL (status=" << status << ")\n";
    return false;
  }

  const std::filesystem::path snap = newest_snapshot(dir);
  exp::EngineBundle bundle = exp::build_engine(crash_request(options));
  SimEngine& engine = *bundle.engine;
  {
    std::ifstream in(snap, std::ios::binary);
    if (!in) throw ContractViolation("cannot open " + snap.string());
    engine.restore_snapshot(in);
  }
  std::cerr << "  killed at event " << kill_at << ", restored " << snap.filename().string()
            << " at event " << engine.events_processed() << "\n";
  while (engine.step()) {
  }
  const RunMetrics restored = engine.finalize();

  std::filesystem::remove_all(dir);
  const bool ok = deterministic_equal(reference, restored) &&
                  reference.event_stream_hash == restored.event_stream_hash;
  if (!ok) {
    std::cerr << "  MISMATCH\n    reference: hash=" << std::hex << reference.event_stream_hash
              << std::dec << " " << reference.summary() << "\n    restored:  hash=" << std::hex
              << restored.event_stream_hash << std::dec << " " << restored.summary() << "\n";
  }
  return ok;
}

std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return std::string(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    if (!parse(argc, argv, options)) return 0;
    if (options.child) return options.journal ? run_journal_child(options) : run_child(options);

    if (options.journal) {
      // Zero-loss gate: reference streams the withheld jobs live, no journal.
      exp::RunRequest request = crash_request(options);
      const auto script = exp::split_streamed_tail(request, options.stream_jobs);
      const RunMetrics reference = exp::run_streaming(request, script);
      const std::uint64_t total_events = reference.events_processed;
      if (total_events <= 1) throw ContractViolation("reference run dispatched no events");
      std::cerr << options.scheduler << ": reference " << total_events << " events ("
                << reference.jobs_injected << " streamed), hash=0x" << std::hex
                << reference.event_stream_hash << std::dec << "\n";

      const std::string self_exe = self_exe_path(argv[0]);
      Rng rng(options.seed);
      int failures = 0;
      for (int trial = 0; trial < options.trials; ++trial) {
        const std::uint64_t kill_at = 1 + rng.next_u64() % (total_events - 1);
        std::cerr << "trial " << trial << (options.sigkill ? " (journal, sigkill):\n"
                                                           : " (journal, in-process):\n");
        const bool ok =
            run_journal_trial(options, self_exe, kill_at, request, script, reference);
        std::cout << "trial " << trial << " kill_at=" << kill_at << " "
                  << (ok ? "PASS" : "FAIL") << "\n";
        if (!ok) ++failures;
      }
      if (failures > 0) {
        std::cout << failures << "/" << options.trials << " trials FAILED\n";
        return 1;
      }
      std::cout << "all " << options.trials
                << " trials byte-identical after journal recovery\n";
      return 0;
    }

    // Uninterrupted reference run: total event count bounds the kill draw.
    exp::EngineBundle reference_bundle = exp::build_engine(crash_request(options));
    const RunMetrics reference = reference_bundle.engine->run();
    const std::uint64_t total_events = reference.events_processed;
    if (total_events <= 1) throw ContractViolation("reference run dispatched no events");
    std::cerr << options.scheduler << ": reference " << total_events << " events, hash=0x"
              << std::hex << reference.event_stream_hash << std::dec << "\n";

    const std::string self_exe = self_exe_path(argv[0]);
    Rng rng(options.seed);
    int failures = 0;
    for (int trial = 0; trial < options.trials; ++trial) {
      // Kill somewhere strictly inside the run so the resume does real work.
      const std::uint64_t kill_at = 1 + rng.next_u64() % (total_events - 1);
      bool ok = false;
      if (options.sigkill) {
        std::cerr << "trial " << trial << " (sigkill):\n";
        ok = run_sigkill_trial(options, self_exe, kill_at, reference);
      } else {
        const exp::RestoreCheckResult result =
            exp::check_restore_equivalence(crash_request(options), kill_at);
        ok = result.equivalent;
        std::cerr << "trial " << trial << " (in-process): kill at event "
                  << result.snapshot_event << "\n";
        if (!ok) std::cerr << result.detail << "\n";
      }
      std::cout << "trial " << trial << " kill_at=" << kill_at << " "
                << (ok ? "PASS" : "FAIL") << "\n";
      if (!ok) ++failures;
    }
    if (failures > 0) {
      std::cout << failures << "/" << options.trials << " trials FAILED\n";
      return 1;
    }
    std::cout << "all " << options.trials << " trials byte-identical after restore\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
