// mlfs_sim — command-line driver for the simulator. Runs any registered
// scheduler on either a synthetic Philly-style workload or a trace CSV
// (the examples/trace_replay.cpp schema) and prints the run metrics,
// optionally as CSV. The one binary a downstream user needs to evaluate a
// scheduling idea against the MLFS family.
//
// Multiple --scheduler runs execute on the shared experiment runner
// (exp::run_batch): concurrently up to --threads, with output always in
// the order the schedulers were given.
//
// Usage:
//   mlfs_sim [--scheduler NAME]... [--jobs N] [--hours H] [--seed S]
//            [--servers N] [--gpus-per-server N] [--trace FILE]
//            [--servers-per-rack N] [--slow-fraction F] [--straggler P]
//            [--replicas N] [--threads N] [--csv] [--list-schedulers]
//            [--mtbf H] [--mttr H] [--kill-prob P] [--flaky F]
//            [--checkpoint-interval N] [--recovery] [--retry-budget N]
//            [--adaptive-checkpoint] [--spread-placement]
//            [--legacy-curve-fit] [--coarsen-curve]
//            [--contention] [--duty-cycle] [--nic-mbps B] [--uplink-mbps B]
//            [--snapshot-every N] [--snapshot-dir D] [--restore FILE]
//            [--snapshot-keep K] [--journal DIR] [--fsync every|group|off]
//            [--stream-jobs N]
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/durable.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "sim/engine.hpp"
#include "sim/event_log.hpp"
#include "workload/trace.hpp"

namespace {

using namespace mlfs;

struct Options {
  std::vector<std::string> schedulers;
  std::size_t jobs = 200;
  double hours = 24.0;
  std::uint64_t seed = 42;
  std::size_t servers = 8;
  int gpus_per_server = 4;
  std::size_t total_gpus = 0;
  bool no_bucket_index = false;
  std::string trace_file;
  int servers_per_rack = 0;
  double slow_fraction = 0.0;
  double straggler_probability = 0.0;
  int straggler_replicas = 0;
  unsigned threads = 0;  // 0 = hardware concurrency
  bool csv = false;
  bool legacy_hotpath = false;
  bool audit = false;
  std::string event_log_file;

  // Fault injection + recovery policies.
  double mtbf_hours = 0.0;
  double mttr_hours = 0.5;
  double kill_probability = 0.0;
  double flaky_fraction = 0.0;
  int checkpoint_interval = 1;
  bool recovery = false;
  int retry_budget = 0;
  bool adaptive_checkpoint = false;
  bool spread_placement = false;

  // Prediction service (predict/service.hpp).
  bool legacy_curve_fit = false;
  bool coarsen_curve = false;

  // Link contention (sim/link_model.hpp).
  bool contention = false;
  bool duty_cycle = false;
  double nic_mbps = 1000.0;
  double uplink_mbps = 600.0;

  // Snapshot / restore (single-scheduler manual drive).
  std::uint64_t snapshot_every = 0;  ///< events between snapshots (0 = off)
  std::string snapshot_dir = "snapshots";
  std::string restore_file;
  int snapshot_keep = 0;  ///< prune to the newest K snapshots (0 = keep all)

  // Durable journal session (exp/durable.hpp; single scheduler).
  std::string journal_dir;  ///< empty = off
  FsyncPolicy fsync = FsyncPolicy::GroupCommit;
  std::size_t stream_jobs = 0;  ///< stream the last N workload jobs in live
};

void print_usage() {
  std::cout <<
      "mlfs_sim — run ML-cluster scheduling experiments\n\n"
      "  --scheduler NAME     scheduler to run (repeatable; default: MLFS)\n"
      "  --list-schedulers    list registered schedulers and exit (alias: --list)\n"
      "  --jobs N             synthetic jobs to generate (default 200)\n"
      "  --hours H            arrival window in hours (default 24)\n"
      "  --seed S             trace + engine seed (default 42)\n"
      "  --servers N          server count (default 8)\n"
      "  --gpus-per-server N  GPUs per server (default 4)\n"
      "  --total-gpus N       distribute N GPUs across the fleet instead of\n"
      "                       a uniform per-server count (heterogeneous,\n"
      "                       e.g. Philly: --servers 550 --total-gpus 2474)\n"
      "  --no-bucket-index    disable the bucketed placement index (linear\n"
      "                       candidate funnel; same decisions)\n"
      "  --trace FILE         replay a trace CSV instead of generating\n"
      "  --servers-per-rack N rack topology (0 = flat)\n"
      "  --slow-fraction F    fraction of servers on the slow GPU tier\n"
      "  --straggler P        per task-iteration straggler probability\n"
      "  --replicas N         straggler-mitigation replicas per task\n"
      "  --threads N          concurrent runs (default 0 = hardware concurrency;\n"
      "                       results and output order do not depend on N)\n"
      "  --csv                emit one CSV row per run instead of prose\n"
      "  --legacy-hotpath     disable the incremental load index + comm memo\n"
      "                       (reference scan scheduler; same decisions)\n"
      "  --audit              validate simulation invariants after every\n"
      "                       event (sim/audit.hpp); results are identical,\n"
      "                       violations abort the run with a diagnostic\n"
      "  --event-log FILE     write a JSONL event trace of the (last) run;\n"
      "                       forces --threads 1\n"
      "  --mtbf H             mean time between server crashes in hours\n"
      "                       (0 = no crashes; exponential inter-arrivals)\n"
      "  --mttr H             mean crash repair time in hours (default 0.5;\n"
      "                       0 makes crashes permanent)\n"
      "  --kill-prob P        per task-iteration transient kill probability\n"
      "  --flaky F            fraction of servers crashing/killing at 8x the\n"
      "                       base rates (heterogeneous reliability)\n"
      "  --checkpoint-interval N  iterations between checkpoints (default 1)\n"
      "  --recovery           enable the failure-aware recovery policies\n"
      "                       (server health tracking, quarantine with\n"
      "                       probation, retry backoff; sim/health.hpp)\n"
      "  --retry-budget N     fault retries per job before it is marked\n"
      "                       failed-permanent (0 = unlimited; needs --recovery)\n"
      "  --adaptive-checkpoint  size checkpoint intervals by Young/Daly from\n"
      "                       the observed MTBF (needs --recovery)\n"
      "  --spread-placement   rack-spread penalty in host choice so one rack\n"
      "                       outage cannot erase a whole job (needs --recovery)\n"
      "  --legacy-curve-fit   stateless cold learning-curve fits at every\n"
      "                       OptStop check instead of the incremental\n"
      "                       memoized prediction service (identical results)\n"
      "  --coarsen-curve      log-subsample long observation tails before\n"
      "                       curve fitting (approximation; changes results)\n"
      "  --contention         enable link-level bandwidth contention: per-\n"
      "                       server NICs and per-rack uplinks divide their\n"
      "                       capacity fairly among concurrent flows\n"
      "                       (sim/link_model.hpp; changes results)\n"
      "  --duty-cycle         per-model compute/communicate duty cycles: jobs\n"
      "                       contend only while their comm windows overlap,\n"
      "                       which network-aware schedulers (Cassini) offset\n"
      "                       (needs --contention)\n"
      "  --nic-mbps B         per-server NIC capacity in Mbps (default 1000;\n"
      "                       <= 0 = unconstrained; needs --contention)\n"
      "  --uplink-mbps B      per-rack uplink capacity in Mbps (default 600;\n"
      "                       <= 0 = unconstrained; needs --contention)\n"
      "  --snapshot-every N   write an engine snapshot every N events (atomic\n"
      "                       tmp+rename, snap-<events>.bin); single scheduler only\n"
      "  --snapshot-dir D     snapshot directory (default ./snapshots)\n"
      "  --restore FILE       resume from a snapshot instead of starting fresh;\n"
      "                       the other flags must rebuild the exact run the\n"
      "                       snapshot came from (config fingerprint enforced)\n"
      "  --snapshot-keep K    prune all but the newest K snapshots (and, with\n"
      "                       --journal, their journal segments); 0 = keep all\n"
      "  --journal DIR        durable session: write-ahead journal + periodic\n"
      "                       snapshots in DIR (stride from --snapshot-every);\n"
      "                       if DIR already holds a snapshot the run resumes\n"
      "                       from it, replaying journaled arrivals — SIGKILL\n"
      "                       at any instant loses nothing\n"
      "  --fsync P            journal fsync policy: every | group | off\n"
      "                       (default group; needs --journal)\n"
      "  --stream-jobs N      withhold the last N workload jobs and stream\n"
      "                       them into the running engine as live arrivals\n"
      "                       (journaled write-ahead; needs --journal)\n";
}

bool parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    } else if (arg == "--list" || arg == "--list-schedulers") {
      for (const auto& name : exp::registered_scheduler_names()) std::cout << name << "\n";
      return false;
    } else if (arg == "--scheduler") {
      const char* v = next("--scheduler");
      if (!v) return false;
      options.schedulers.emplace_back(v);
    } else if (arg == "--jobs") {
      const char* v = next("--jobs");
      if (!v) return false;
      options.jobs = std::stoul(v);
    } else if (arg == "--hours") {
      const char* v = next("--hours");
      if (!v) return false;
      options.hours = std::stod(v);
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      options.seed = std::stoull(v);
    } else if (arg == "--servers") {
      const char* v = next("--servers");
      if (!v) return false;
      options.servers = std::stoul(v);
    } else if (arg == "--gpus-per-server") {
      const char* v = next("--gpus-per-server");
      if (!v) return false;
      options.gpus_per_server = std::stoi(v);
    } else if (arg == "--total-gpus") {
      const char* v = next("--total-gpus");
      if (!v) return false;
      options.total_gpus = std::stoul(v);
    } else if (arg == "--no-bucket-index") {
      options.no_bucket_index = true;
    } else if (arg == "--trace") {
      const char* v = next("--trace");
      if (!v) return false;
      options.trace_file = v;
    } else if (arg == "--servers-per-rack") {
      const char* v = next("--servers-per-rack");
      if (!v) return false;
      options.servers_per_rack = std::stoi(v);
    } else if (arg == "--slow-fraction") {
      const char* v = next("--slow-fraction");
      if (!v) return false;
      options.slow_fraction = std::stod(v);
    } else if (arg == "--straggler") {
      const char* v = next("--straggler");
      if (!v) return false;
      options.straggler_probability = std::stod(v);
    } else if (arg == "--replicas") {
      const char* v = next("--replicas");
      if (!v) return false;
      options.straggler_replicas = std::stoi(v);
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (!v) return false;
      options.threads = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--mtbf") {
      const char* v = next("--mtbf");
      if (!v) return false;
      options.mtbf_hours = std::stod(v);
    } else if (arg == "--mttr") {
      const char* v = next("--mttr");
      if (!v) return false;
      options.mttr_hours = std::stod(v);
    } else if (arg == "--kill-prob") {
      const char* v = next("--kill-prob");
      if (!v) return false;
      options.kill_probability = std::stod(v);
    } else if (arg == "--flaky") {
      const char* v = next("--flaky");
      if (!v) return false;
      options.flaky_fraction = std::stod(v);
    } else if (arg == "--checkpoint-interval") {
      const char* v = next("--checkpoint-interval");
      if (!v) return false;
      options.checkpoint_interval = std::stoi(v);
    } else if (arg == "--recovery") {
      options.recovery = true;
    } else if (arg == "--retry-budget") {
      const char* v = next("--retry-budget");
      if (!v) return false;
      options.retry_budget = std::stoi(v);
    } else if (arg == "--adaptive-checkpoint") {
      options.adaptive_checkpoint = true;
    } else if (arg == "--spread-placement") {
      options.spread_placement = true;
    } else if (arg == "--legacy-curve-fit") {
      options.legacy_curve_fit = true;
    } else if (arg == "--coarsen-curve") {
      options.coarsen_curve = true;
    } else if (arg == "--contention") {
      options.contention = true;
    } else if (arg == "--duty-cycle") {
      options.duty_cycle = true;
    } else if (arg == "--nic-mbps") {
      const char* v = next("--nic-mbps");
      if (!v) return false;
      options.nic_mbps = std::stod(v);
    } else if (arg == "--uplink-mbps") {
      const char* v = next("--uplink-mbps");
      if (!v) return false;
      options.uplink_mbps = std::stod(v);
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--legacy-hotpath") {
      options.legacy_hotpath = true;
    } else if (arg == "--audit") {
      options.audit = true;
    } else if (arg == "--event-log") {
      const char* v = next("--event-log");
      if (!v) return false;
      options.event_log_file = v;
    } else if (arg == "--snapshot-every") {
      const char* v = next("--snapshot-every");
      if (!v) return false;
      options.snapshot_every = std::stoull(v);
    } else if (arg == "--snapshot-dir") {
      const char* v = next("--snapshot-dir");
      if (!v) return false;
      options.snapshot_dir = v;
    } else if (arg == "--restore") {
      const char* v = next("--restore");
      if (!v) return false;
      options.restore_file = v;
    } else if (arg == "--snapshot-keep") {
      const char* v = next("--snapshot-keep");
      if (!v) return false;
      options.snapshot_keep = std::stoi(v);
    } else if (arg == "--journal") {
      const char* v = next("--journal");
      if (!v) return false;
      options.journal_dir = v;
    } else if (arg == "--fsync") {
      const char* v = next("--fsync");
      if (!v) return false;
      const std::string policy = v;
      if (policy == "every") {
        options.fsync = FsyncPolicy::EveryRecord;
      } else if (policy == "group") {
        options.fsync = FsyncPolicy::GroupCommit;
      } else if (policy == "off") {
        options.fsync = FsyncPolicy::Off;
      } else {
        std::cerr << "--fsync takes every | group | off\n";
        return false;
      }
    } else if (arg == "--stream-jobs") {
      const char* v = next("--stream-jobs");
      if (!v) return false;
      options.stream_jobs = std::stoul(v);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      print_usage();
      return false;
    }
  }
  if (options.schedulers.empty()) options.schedulers = {"MLFS"};
  for (const auto& name : options.schedulers) {
    if (!exp::is_registered_scheduler(name)) {
      std::cerr << "unknown scheduler: " << name << " (see --list-schedulers)\n";
      return false;
    }
  }
  if (!options.recovery && (options.retry_budget != 0 || options.adaptive_checkpoint ||
                            options.spread_placement)) {
    std::cerr << "--retry-budget / --adaptive-checkpoint / --spread-placement "
                 "need --recovery\n";
    return false;
  }
  if (!options.contention &&
      (options.duty_cycle || options.nic_mbps != 1000.0 || options.uplink_mbps != 600.0)) {
    std::cerr << "--duty-cycle / --nic-mbps / --uplink-mbps need --contention\n";
    return false;
  }
  if ((options.snapshot_every > 0 || !options.restore_file.empty() ||
       !options.journal_dir.empty()) &&
      options.schedulers.size() != 1) {
    std::cerr << "--snapshot-every / --restore / --journal drive one engine "
                 "manually; give exactly one --scheduler\n";
    return false;
  }
  if (options.journal_dir.empty() && options.stream_jobs > 0) {
    std::cerr << "--stream-jobs needs --journal\n";
    return false;
  }
  if (!options.journal_dir.empty() && !options.restore_file.empty()) {
    std::cerr << "--journal recovers from its own directory; drop --restore\n";
    return false;
  }
  if (!options.journal_dir.empty() && !options.event_log_file.empty()) {
    std::cerr << "--event-log is not supported with --journal\n";
    return false;
  }
  if (options.snapshot_keep < 0) {
    std::cerr << "--snapshot-keep must be >= 0\n";
    return false;
  }
  return true;
}

/// Writes a snapshot atomically: a crash mid-write leaves only a *.tmp the
/// restore path never considers, never a truncated snap-*.bin.
void write_snapshot_atomic(const SimEngine& engine, const std::filesystem::path& dir,
                           std::uint64_t events) {
  std::filesystem::create_directories(dir);
  const std::filesystem::path tmp = dir / ("snap-" + std::to_string(events) + ".tmp");
  const std::filesystem::path final_path = dir / ("snap-" + std::to_string(events) + ".bin");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw ContractViolation("cannot write snapshot " + tmp.string());
    engine.save_snapshot(out);
    out.flush();
    if (!out) throw ContractViolation("short write on snapshot " + tmp.string());
  }
  std::filesystem::rename(tmp, final_path);
}

/// Prunes the legacy --snapshot-every directory to the newest `keep`
/// snap-*.bin files (the --journal path prunes snapshot+journal *pairs*
/// itself, inside exp::run_durable).
void prune_snapshot_dir(const std::filesystem::path& dir, int keep) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> snaps;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0 || entry.path().extension() != ".bin") continue;
    snaps.emplace_back(std::stoull(name.substr(5)), entry.path());
  }
  std::sort(snaps.begin(), snaps.end());
  while (snaps.size() > static_cast<std::size_t>(keep)) {
    std::filesystem::remove(snaps.front().second);
    snaps.erase(snaps.begin());
  }
}

std::shared_ptr<const std::vector<JobSpec>> load_trace_workload(const Options& options) {
  if (options.trace_file.empty()) return nullptr;
  std::ifstream in(options.trace_file);
  if (!in) throw ContractViolation("cannot open trace file: " + options.trace_file);
  return std::make_shared<const std::vector<JobSpec>>(read_trace_csv(in));
}

void print_csv_row(const RunMetrics& m) {
  std::cout << m.scheduler << ',' << m.job_count << ',' << m.average_jct_minutes() << ','
            << m.jct_minutes.median() << ',' << m.makespan_hours << ',' << m.deadline_ratio
            << ',' << m.average_waiting_seconds() << ',' << m.average_accuracy << ','
            << m.accuracy_ratio << ',' << m.bandwidth_tb << ',' << m.inter_rack_tb << ','
            << m.sched_overhead_ms << ',' << m.migrations << ',' << m.preemptions << ','
            << m.sched_rounds << ',' << m.candidates_scanned << ','
            << m.candidates_linear << ',' << m.comm_cache_hits << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    if (!parse(argc, argv, options)) return 0;

    ClusterConfig cluster;
    cluster.server_count = options.servers;
    cluster.gpus_per_server = options.gpus_per_server;
    cluster.servers_per_rack = options.servers_per_rack;
    cluster.slow_server_fraction = options.slow_fraction;
    cluster.total_gpus = options.total_gpus;
    cluster.incremental_load_index = !options.legacy_hotpath;
    cluster.placement_bucket_index = !options.no_bucket_index;
    cluster.link_contention = options.contention;
    cluster.nic_capacity_mbps = options.nic_mbps;
    cluster.rack_uplink_capacity_mbps = options.uplink_mbps;
    cluster.duty_cycles = options.duty_cycle;

    EngineConfig engine_config;
    engine_config.seed = options.seed ^ 0xabc;
    engine_config.straggler_probability = options.straggler_probability;
    engine_config.straggler_replicas = options.straggler_replicas;
    engine_config.audit.enabled = options.audit;
    engine_config.fault.server_mtbf_hours = options.mtbf_hours;
    engine_config.fault.server_mttr_hours = options.mttr_hours;
    engine_config.fault.task_kill_probability = options.kill_probability;
    engine_config.fault.flaky_server_fraction = options.flaky_fraction;
    engine_config.fault.checkpoint_interval_iterations = options.checkpoint_interval;
    engine_config.recovery.enabled = options.recovery;
    engine_config.recovery.retry_budget = options.retry_budget;
    engine_config.recovery.adaptive_checkpoint = options.adaptive_checkpoint;
    engine_config.recovery.spread_placement = options.spread_placement;
    engine_config.predict.enabled = !options.legacy_curve_fit;
    engine_config.predict.coarsen = options.coarsen_curve;

    TraceConfig trace;
    trace.num_jobs = options.jobs;
    trace.duration_hours = options.hours;
    trace.seed = options.seed;
    trace.max_gpu_request =
        std::min<int>(32, static_cast<int>(options.servers) * options.gpus_per_server / 2);

    core::MlfsConfig mlfs_config;
    mlfs_config.legacy_hot_path = options.legacy_hotpath;

    const auto shared_workload = load_trace_workload(options);

    // The JSONL observer writes to one file; attaching it to concurrent
    // runs would interleave streams, so the event log forces serial runs
    // (each run overwrites the file — the last scheduler's trace remains,
    // as before).
    const bool want_event_log = !options.event_log_file.empty();
    if (want_event_log && options.threads != 1) {
      std::cerr << "note: --event-log forces --threads 1\n";
      options.threads = 1;
    }

    std::vector<exp::RunRequest> requests;
    requests.reserve(options.schedulers.size());
    for (const auto& name : options.schedulers) {
      exp::RunRequest request;
      request.label = name;
      request.cluster = cluster;
      request.engine = engine_config;
      request.trace = trace;
      request.scheduler = name;
      request.mlfs_config = mlfs_config;
      request.workload = shared_workload;
      requests.push_back(std::move(request));
    }

    std::ofstream event_out;
    std::unique_ptr<JsonlEventLog> event_log;
    if (want_event_log) {
      event_out.open(options.event_log_file);
      if (!event_out) throw ContractViolation("cannot open " + options.event_log_file);
      event_log = std::make_unique<JsonlEventLog>(event_out);
      requests.back().observer = event_log.get();
    }

    // Durable session: write-ahead journal + periodic snapshots. Resumes
    // automatically if the directory already holds a snapshot; --stream-jobs
    // withholds the tail of the workload and injects it live.
    if (!options.journal_dir.empty()) {
      exp::RunRequest request = requests.front();
      std::vector<exp::ScriptedArrivalSource::Entry> script;
      if (options.stream_jobs > 0) {
        std::vector<JobSpec> specs = request.workload
                                         ? *request.workload
                                         : PhillyTraceGenerator(request.trace).generate();
        std::stable_sort(specs.begin(), specs.end(), [](const JobSpec& a, const JobSpec& b) {
          return a.arrival < b.arrival;
        });
        if (options.stream_jobs >= specs.size()) {
          throw ContractViolation("--stream-jobs must leave at least one job in the start set");
        }
        std::vector<JobSpec> streamed(
            specs.end() - static_cast<std::ptrdiff_t>(options.stream_jobs), specs.end());
        specs.resize(specs.size() - options.stream_jobs);
        // The cluster requires dense job ids; streamed jobs are re-id'd by
        // the engine on injection, so only the start set is renumbered.
        for (std::size_t i = 0; i < specs.size(); ++i) specs[i].id = static_cast<JobId>(i);
        request.workload = std::make_shared<const std::vector<JobSpec>>(std::move(specs));
        script = exp::make_script(streamed);
      }
      exp::DurableConfig config;
      config.dir = options.journal_dir;
      config.snapshot_stride = options.snapshot_every;
      config.snapshot_keep = options.snapshot_keep;
      config.fsync = options.fsync;
      const exp::DurableResult result = exp::run_durable(request, script, config);
      if (result.recovered) {
        std::cerr << "recovered from snapshot at event " << result.resume_event
                  << ", replayed " << result.records_replayed << " journaled arrivals"
                  << (result.torn_tail_dropped ? " (torn tail dropped)" : "") << "\n";
      }
      if (options.csv) {
        std::cout << "scheduler,jobs,avg_jct_min,median_jct_min,makespan_h,deadline_ratio,"
                     "avg_wait_s,avg_accuracy,accuracy_ratio,bandwidth_tb,inter_rack_tb,"
                     "sched_overhead_ms,migrations,preemptions,sched_rounds,"
                     "candidates_scanned,candidates_linear,comm_cache_hits\n";
        print_csv_row(result.metrics);
      } else {
        std::cout << result.metrics.summary() << "\n";
      }
      return 0;
    }

    // Snapshot / restore path: drive the one engine manually so we can
    // checkpoint on an event stride and/or resume from a prior snapshot.
    if (options.snapshot_every > 0 || !options.restore_file.empty()) {
      exp::EngineBundle bundle = exp::build_engine(requests.front());
      SimEngine& engine = *bundle.engine;
      if (!options.restore_file.empty()) {
        std::ifstream in(options.restore_file, std::ios::binary);
        if (!in) throw ContractViolation("cannot open snapshot: " + options.restore_file);
        engine.restore_snapshot(in);
        std::cerr << "restored at event " << engine.events_processed() << "\n";
      }
      while (engine.step()) {
        if (options.snapshot_every > 0 &&
            engine.events_processed() % options.snapshot_every == 0) {
          write_snapshot_atomic(engine, options.snapshot_dir, engine.events_processed());
          if (options.snapshot_keep > 0) {
            prune_snapshot_dir(options.snapshot_dir, options.snapshot_keep);
          }
        }
      }
      const RunMetrics m = engine.finalize();
      if (options.csv) {
        std::cout << "scheduler,jobs,avg_jct_min,median_jct_min,makespan_h,deadline_ratio,"
                     "avg_wait_s,avg_accuracy,accuracy_ratio,bandwidth_tb,inter_rack_tb,"
                     "sched_overhead_ms,migrations,preemptions,sched_rounds,"
                     "candidates_scanned,candidates_linear,comm_cache_hits\n";
        print_csv_row(m);
      } else {
        std::cout << m.summary() << "\n";
      }
      return 0;
    }

    exp::RunOptions run_options;
    run_options.threads = options.threads;
    run_options.verbose = false;  // rows are printed in scheduler order below
    const std::vector<RunMetrics> results = exp::run_batch(requests, run_options);

    if (options.csv) {
      std::cout << "scheduler,jobs,avg_jct_min,median_jct_min,makespan_h,deadline_ratio,"
                   "avg_wait_s,avg_accuracy,accuracy_ratio,bandwidth_tb,inter_rack_tb,"
                   "sched_overhead_ms,migrations,preemptions,sched_rounds,"
                   "candidates_scanned,candidates_linear,comm_cache_hits\n";
      for (const RunMetrics& m : results) print_csv_row(m);
    } else {
      for (const RunMetrics& m : results) std::cout << m.summary() << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
