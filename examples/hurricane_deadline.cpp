// The paper's motivating scenario (§1, Fig. 1): an *urgent* hurricane-path
// prediction job — time-critical, high required accuracy — is submitted to
// a cluster already busy with batch training jobs. MLFS's urgency
// coefficient L_J (Eq. 2) and deadline term (Eq. 4) must get it scheduled
// ahead of the batch work so it finishes before landfall; a FIFO scheduler
// (Gandiva-style) leaves it waiting in line.
#include <iostream>

#include "core/mlf_c.hpp"
#include "core/mlfs.hpp"
#include "sched/gandiva.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

using namespace mlfs;

namespace {

/// The workload: 79 low-urgency batch jobs, then the hurricane job
/// arriving into the busy cluster at hour 6 with a 3-hour deadline.
std::vector<JobSpec> make_workload(JobId* hurricane_id) {
  TraceConfig config;
  config.num_jobs = 79;
  config.duration_hours = 6.0;
  config.seed = 2020;  // the year of the Wuhan-coronavirus example
  config.max_gpu_request = 8;
  config.urgency_levels = 3;  // background jobs stay low urgency
  auto jobs = PhillyTraceGenerator(config).generate();

  JobSpec hurricane;
  hurricane.id = static_cast<JobId>(jobs.size());
  hurricane.algorithm = MlAlgorithm::Lstm;  // a sequence model for the track
  hurricane.comm = CommStructure::ParameterServer;
  hurricane.arrival = hours(6.0);
  hurricane.urgency = 10.0;  // maximum urgency level
  hurricane.gpu_request = 8;
  hurricane.max_iterations = 80;
  hurricane.train_data_mb = 800.0;
  hurricane.curve.max_accuracy = 0.94;
  hurricane.curve.kappa = 8.0;
  hurricane.curve.noise_seed = 1;
  hurricane.accuracy_requirement = 0.88;
  hurricane.deadline_slack_hours = 3.0;  // landfall
  hurricane.stop_policy = StopPolicy::AccuracyOnly;
  hurricane.min_allowed_policy = StopPolicy::AccuracyOnly;
  hurricane.seed = 99;
  *hurricane_id = hurricane.id;
  jobs.push_back(hurricane);
  return jobs;
}

void report(const std::string& label, const SimEngine& engine, JobId hurricane_id) {
  const Job& job = engine.cluster().job(hurricane_id);
  const double jct_min = to_minutes(job.completion_time() - job.spec().arrival);
  const bool met = job.done() && job.completion_time() <= job.deadline();
  std::cout << label << ": hurricane job JCT " << jct_min << " min, waited "
            << job.waiting_time() / 60.0 << " min, accuracy by deadline "
            << job.accuracy_by_deadline() << (met ? "  -> DEADLINE MET" : "  -> MISSED")
            << "\n";
}

}  // namespace

int main() {
  ClusterConfig cluster;
  cluster.server_count = 8;
  cluster.gpus_per_server = 4;

  JobId hurricane_id = 0;

  // --- MLFS ---
  {
    auto jobs = make_workload(&hurricane_id);
    core::MlfsConfig config;
    core::MlfsScheduler scheduler(config, "MLFS");
    core::MlfC controller(config.load_control);
    SimEngine engine(cluster, {}, std::move(jobs), scheduler, &controller);
    (void)engine.run();
    report("MLFS   ", engine, hurricane_id);
  }

  // --- FIFO baseline (Gandiva) ---
  {
    auto jobs = make_workload(&hurricane_id);
    sched::GandivaScheduler scheduler;
    SimEngine engine(cluster, {}, std::move(jobs), scheduler);
    (void)engine.run();
    report("Gandiva", engine, hurricane_id);
  }

  std::cout << "\nMLFS prioritizes the urgent job via the urgency coefficient (Eq. 2)\n"
               "and the deadline term (Eq. 4); FIFO serves the earlier batch jobs first.\n";
  return 0;
}
