// Trace workflow example: generate a Philly-style synthetic trace, write
// it to CSV (the replayable artifact a real Philly trace would be
// converted into), read it back, and replay the identical workload under
// two schedulers for an apples-to-apples comparison.
//
// Usage: trace_replay [num_jobs] [trace.csv]
#include <fstream>
#include <iostream>
#include <sstream>

#include "exp/registry.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

using namespace mlfs;

int main(int argc, char** argv) {
  const std::size_t num_jobs = argc > 1 ? std::stoul(argv[1]) : 150;
  const std::string path = argc > 2 ? argv[2] : "trace_replay.csv";

  // 1. Generate and persist the trace.
  TraceConfig config;
  config.num_jobs = num_jobs;
  config.duration_hours = 24.0;
  config.seed = 4242;
  config.max_gpu_request = 8;
  {
    const auto jobs = PhillyTraceGenerator(config).generate();
    std::ofstream out(path);
    write_trace_csv(out, jobs);
    std::cout << "wrote " << jobs.size() << " jobs to " << path << "\n";
  }

  // 2. Read it back — any CSV with this schema replays the same way.
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot reopen " << path << "\n";
    return 1;
  }
  const auto replayed = read_trace_csv(in);
  std::cout << "replaying " << replayed.size() << " jobs on a 6x4-GPU cluster\n\n";

  // 3. Same workload, two schedulers.
  ClusterConfig cluster;
  cluster.server_count = 6;
  cluster.gpus_per_server = 4;
  for (const std::string name : {"MLFS", "TensorFlow"}) {
    auto instance = exp::make_scheduler(name);
    SimEngine engine(cluster, {}, replayed, *instance.scheduler, instance.controller.get());
    const RunMetrics m = engine.run();
    std::cout << m.summary() << "\n";
  }
  std::cout << "\nIdentical arrivals, models and requirements — the differences above\n"
               "are purely scheduling policy.\n";
  return 0;
}
