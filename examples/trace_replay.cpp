// Trace workflow example: generate a Philly-style synthetic trace, write
// it to CSV (the replayable artifact a real Philly trace would be
// converted into), read it back, and replay the identical workload under
// two schedulers for an apples-to-apples comparison.
//
// The straggler and failure models are sweepable from the command line —
// no code edits needed to re-run the comparison under churn.
//
// Usage: trace_replay [num_jobs] [trace.csv]
//                     [--stragglers P] [--failure-rate CRASHES_PER_SERVER_WEEK]
//                     [--mttr HOURS] [--kill-prob P]
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "exp/registry.hpp"
#include "exp/scenario.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

using namespace mlfs;

int main(int argc, char** argv) {
  std::size_t num_jobs = 150;
  std::string path = "trace_replay.csv";
  double stragglers = 0.0, failure_rate = 0.0, mttr_hours = 0.5, kill_prob = 0.0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stragglers") == 0 && i + 1 < argc) {
      stragglers = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--failure-rate") == 0 && i + 1 < argc) {
      failure_rate = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--mttr") == 0 && i + 1 < argc) {
      mttr_hours = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--kill-prob") == 0 && i + 1 < argc) {
      kill_prob = std::stod(argv[++i]);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::cerr << "unknown or valueless flag: " << argv[i]
                << "\nusage: trace_replay [num_jobs] [trace.csv] [--stragglers P]"
                   " [--failure-rate R] [--mttr H] [--kill-prob P]\n";
      return 1;
    } else if (positional == 0) {
      num_jobs = std::stoul(argv[i]);
      ++positional;
    } else {
      path = argv[i];
      ++positional;
    }
  }

  // 1. Generate and persist the trace.
  TraceConfig config;
  config.num_jobs = num_jobs;
  config.duration_hours = 24.0;
  config.seed = 4242;
  config.max_gpu_request = 8;
  {
    const auto jobs = PhillyTraceGenerator(config).generate();
    std::ofstream out(path);
    write_trace_csv(out, jobs);
    std::cout << "wrote " << jobs.size() << " jobs to " << path << "\n";
  }

  // 2. Read it back — any CSV with this schema replays the same way.
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot reopen " << path << "\n";
    return 1;
  }
  const auto replayed = read_trace_csv(in);
  std::cout << "replaying " << replayed.size() << " jobs on a 6x4-GPU cluster";
  if (failure_rate > 0.0) std::cout << ", " << failure_rate << " crashes/server/week";
  if (stragglers > 0.0) std::cout << ", straggler p=" << stragglers;
  if (kill_prob > 0.0) std::cout << ", task kill p=" << kill_prob;
  std::cout << "\n\n";

  // 3. Same workload (and same chaos, if any), two schedulers.
  exp::Scenario scenario;
  scenario.cluster.server_count = 6;
  scenario.cluster.gpus_per_server = 4;
  if (stragglers > 0.0) exp::set_stragglers(scenario, stragglers);
  if (failure_rate > 0.0) exp::set_failure_rate(scenario, failure_rate, mttr_hours);
  scenario.engine.fault.task_kill_probability = kill_prob;
  for (const std::string name : {"MLFS", "TensorFlow"}) {
    auto instance = exp::make_scheduler(name);
    SimEngine engine(scenario.cluster, scenario.engine, replayed, *instance.scheduler,
                     instance.controller.get());
    const RunMetrics m = engine.run();
    std::cout << m.summary() << "\n";
  }
  std::cout << "\nIdentical arrivals, models and requirements — the differences above\n"
               "are purely scheduling policy.\n";
  return 0;
}
