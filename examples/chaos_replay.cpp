// Chaos-engineering example: replay one workload under machine churn
// (random server crashes + transient task kills), stream the full event
// log to JSONL, and prove the chaos run is deterministic — identical
// seed and FaultConfig replay byte-for-byte.
//
// Also demonstrates scripted outages via SimEngine::inject_server_failure
// for targeted what-if drills ("what if rack 0 dies at noon?").
//
// Usage: chaos_replay [num_jobs] [events.jsonl]
#include <fstream>
#include <iostream>
#include <sstream>

#include "exp/registry.hpp"
#include "exp/scenario.hpp"
#include "sim/event_log.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

using namespace mlfs;

namespace {

// One chaos run: returns its metrics and appends the JSONL stream to `log`.
RunMetrics chaos_run(const exp::Scenario& scenario, const std::string& scheduler,
                     std::ostream& log) {
  const auto jobs = PhillyTraceGenerator(scenario.trace).generate();
  auto instance = exp::make_scheduler(scheduler);
  SimEngine engine(scenario.cluster, scenario.engine, jobs, *instance.scheduler,
                   instance.controller.get());
  JsonlEventLog events(log);
  engine.set_observer(&events);
  return engine.run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_jobs = argc > 1 ? std::stoul(argv[1]) : 40;
  const std::string path = argc > 2 ? argv[2] : "chaos_events.jsonl";

  // 1. Random churn: crashes at 14/server/week (MTBF 12h), repairs in
  //    ~30 min, occasional transient task kills, checkpoint every 5
  //    iterations. All knobs live in EngineConfig::fault.
  const exp::Scenario scenario = exp::chaos_scenario(num_jobs);
  std::ostringstream first;
  const RunMetrics m = chaos_run(scenario, "MLFS", first);
  {
    std::ofstream out(path);
    out << first.str();
  }
  std::cout << "chaos run (" << num_jobs << " jobs, MTBF "
            << scenario.engine.fault.server_mtbf_hours << "h, MTTR "
            << scenario.engine.fault.server_mttr_hours << "h):\n  " << m.summary() << "\n  "
            << m.server_failures << " server failures, " << m.crash_evictions
            << " crash evictions, " << m.task_kills << " transient kills\n  goodput "
            << m.goodput << ", " << m.work_lost_gpu_seconds / 3600.0
            << " GPU-hours lost, mean recovery " << m.mean_recovery_seconds << "s\n  full log: "
            << path << "\n\n";

  // 2. Same seed + same FaultConfig => byte-identical event stream. Chaos
  //    runs are replayable artifacts, not one-off flakes.
  std::ostringstream second;
  chaos_run(scenario, "MLFS", second);
  std::cout << "replay determinism: second run "
            << (second.str() == first.str() ? "byte-identical" : "DIVERGED — bug!") << "\n\n";

  // 3. Scripted outage: no random faults, but servers 0 and 1 are killed
  //    one hour in (permanently: MTTR 0 keeps them down).
  exp::Scenario drill = exp::smoke_scenario(num_jobs);
  drill.engine.fault.server_mttr_hours = 0.0;
  const auto jobs = PhillyTraceGenerator(drill.trace).generate();
  auto instance = exp::make_scheduler("MLFS");
  SimEngine engine(drill.cluster, drill.engine, jobs, *instance.scheduler,
                   instance.controller.get());
  engine.inject_server_failure(0, hours(1.0));
  engine.inject_server_failure(1, hours(1.0));
  const RunMetrics d = engine.run();
  std::cout << "scripted drill (servers 0+1 permanently lost at t=1h):\n  " << d.summary()
            << "\n  " << d.crash_evictions << " evictions, all jobs finished on the surviving "
            << "servers.\n";
  return 0;
}
