// The MLF-RL training workflow (§3.4), staged exactly as the paper
// describes: (1) MLF-H drives the cluster while its decisions are logged,
// (2) the policy network is behaviour-cloned from that log, (3) MLF-RL
// takes over and keeps improving online with REINFORCE on the Eq. 7
// reward. This example surfaces each stage and finishes with a
// side-by-side of MLF-H-only vs the switched scheduler, plus a §3.4-style
// reward-weight tuning pass on a small probe workload.
#include <iostream>

#include "core/mlfs.hpp"
#include "core/reward.hpp"
#include "exp/runner.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

using namespace mlfs;

namespace {

std::vector<JobSpec> workload(std::size_t jobs, std::uint64_t seed) {
  TraceConfig config;
  config.num_jobs = jobs;
  config.duration_hours = 24.0;
  config.seed = seed;
  config.max_gpu_request = 8;
  return PhillyTraceGenerator(config).generate();
}

}  // namespace

int main() {
  ClusterConfig cluster;
  cluster.server_count = 6;
  cluster.gpus_per_server = 4;

  // --- stages 1-3: warm-up, cloning, online RL -------------------------
  core::MlfsConfig config;
  config.rl.warmup_samples = 400;  // switch after 400 logged MLF-H decisions
  core::MlfsScheduler scheduler(config);
  {
    SimEngine engine(cluster, {}, workload(260, 11), scheduler);
    const RunMetrics m = engine.run();
    std::cout << "stage 1+2: heuristic warm-up collected " << scheduler.imitation_samples()
              << " imitation samples; RL active: " << (scheduler.rl_active() ? "yes" : "no")
              << "\n";
    std::cout << "stage 3:   cloned policy matches MLF-H on "
              << 100.0 * scheduler.imitation_accuracy() << "% of its own decisions\n";
    std::cout << "           full run with the switch: " << m.summary() << "\n\n";
  }

  // --- comparison: MLF-H only vs MLF-RL (same workload) ----------------
  {
    core::MlfsConfig heuristic_only = config;
    heuristic_only.heuristic_only = true;
    core::MlfsScheduler h(heuristic_only);
    SimEngine engine_h(cluster, {}, workload(260, 11), h);
    std::cout << "MLF-H only: " << engine_h.run().summary() << "\n";

    core::MlfsScheduler rl(config);
    SimEngine engine_rl(cluster, {}, workload(260, 11), rl);
    std::cout << "MLF-RL:     " << engine_rl.run().summary() << "\n\n";
  }

  // --- §3.4 reward-weight search ---------------------------------------
  // A limited number of coarse rounds plus local refinement, evaluating
  // each candidate by the average Eq. 7-style score of a short probe run.
  std::cout << "reward-weight tuning (coarse rounds + local refinement):\n";
  auto evaluate = [&cluster](const core::RewardWeights& w) {
    core::MlfsConfig probe;
    probe.rl.warmup_samples = 200;
    probe.rl.beta1 = w.beta1;
    probe.rl.beta2 = w.beta2;
    probe.rl.beta3 = w.beta3;
    probe.rl.beta4 = w.beta4;
    probe.rl.beta5 = w.beta5;
    core::MlfsScheduler scheduler(probe);
    SimEngine engine(cluster, {}, workload(120, 5), scheduler);
    const RunMetrics m = engine.run();
    // Score the run by the run-level analogue of Eq. 7.
    return w.beta1 / (1.0 + m.average_jct_minutes() / 60.0) + w.beta2 * m.deadline_ratio +
           w.beta3 / (1.0 + m.bandwidth_tb) + w.beta4 * m.accuracy_ratio +
           w.beta5 * m.average_accuracy;
  };
  core::RewardTuner tuner(/*coarse_rounds=*/6, /*refine_rounds=*/4, /*seed=*/3);
  const core::RewardWeights best = tuner.tune(evaluate);
  std::cout << "  best weights: beta = (" << best.beta1 << ", " << best.beta2 << ", "
            << best.beta3 << ", " << best.beta4 << ", " << best.beta5 << ")\n"
            << "  (paper defaults: 0.5, 0.55, 0.25, 0.15, 0.15)\n";
  return 0;
}
