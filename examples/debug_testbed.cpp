// Scratch benchmark probe used during development (not a paper figure).
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace mlfs;
  const std::size_t jobs = argc > 1 ? std::stoul(argv[1]) : 620;
  const std::string only = argc > 2 ? argv[2] : "";
  auto scenario = exp::testbed_scenario();
  // Ablation variants: "<base>@<flag>", flag in
  // {nomig, nourgency, nodeadline, nobw, noc}.
  std::vector<std::string> names =
      only.empty() ? exp::paper_scheduler_names() : std::vector<std::string>{only};
  for (const auto& name : names) {
    core::MlfsConfig config;
    std::string base = name;
    const auto at = name.find('@');
    if (at != std::string::npos) {
      const std::string flag = name.substr(at + 1);
      base = name.substr(0, at);
      if (flag == "nomig") config.migration.enabled = false;
      if (flag == "nourgency") config.priority.use_urgency = false;
      if (flag == "nodeadline") config.priority.use_deadline_term = false;
      if (flag == "nobw") config.placement.use_bandwidth = false;
      if (flag == "noc") config.load_control.enabled = false;
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto m = exp::run_experiment(scenario, base, jobs, config);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::cout << m.summary() << " mig=" << m.migrations << " pre=" << m.preemptions
              << " ovl=" << m.overload_occurrences << " saved=" << m.iterations_saved
              << " rel=" << m.partial_releases << " wd=" << m.watchdog_evictions
              << " wall=" << secs << "s\n";
  }
  return 0;
}
