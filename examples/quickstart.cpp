// Quickstart: build a small cluster, generate a workload, run MLFS, print
// the end-of-run metrics. The shortest path through the public API.
#include <iostream>

#include "core/mlf_c.hpp"
#include "core/mlfs.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace mlfs;

  // 1. A cluster: 4 servers x 4 GPUs.
  ClusterConfig cluster;
  cluster.server_count = 4;
  cluster.gpus_per_server = 4;

  // 2. A workload: 60 ML jobs over 12 hours (Philly-style synthetic trace).
  TraceConfig trace;
  trace.num_jobs = 60;
  trace.duration_hours = 12.0;
  trace.seed = 1;
  trace.max_gpu_request = 8;  // cluster has 16 GPUs
  auto jobs = PhillyTraceGenerator(trace).generate();

  // 3. The MLFS scheduler (MLF-H warm-up -> MLF-RL) plus MLF-C load control.
  core::MlfsConfig config;
  core::MlfsScheduler scheduler(config, "MLFS");
  core::MlfC controller(config.load_control);

  // 4. Run the discrete-event simulation to completion.
  EngineConfig engine_config;
  SimEngine engine(cluster, engine_config, std::move(jobs), scheduler, &controller);
  const RunMetrics metrics = engine.run();

  std::cout << metrics.summary() << "\n";
  std::cout << "median JCT: " << metrics.jct_minutes.median() << " min\n";
  std::cout << "RL phase reached: " << (scheduler.rl_active() ? "yes" : "no") << "\n";
  return 0;
}
