// Scratch grid search over MLF-H priority weights (development tool).
#include <iostream>
#include "exp/runner.hpp"
int main(int argc, char** argv) {
  using namespace mlfs;
  const std::size_t jobs = argc > 1 ? std::stoul(argv[1]) : 1240;
  auto scenario = exp::testbed_scenario();
  for (double alpha : {0.1, 0.3, 0.5}) {
    for (double gr : {0.3, 0.6, 1.2}) {
      for (double gw : {0.1, 0.35}) {
        core::MlfsConfig config;
        config.priority.alpha = alpha;
        config.priority.gamma_r = gr;
        config.priority.gamma_w = gw;
        auto m = exp::run_experiment(scenario, "MLF-H", jobs, config);
        std::cout << "alpha=" << alpha << " gr=" << gr << " gw=" << gw
                  << " -> JCT=" << m.average_jct_minutes()
                  << " ddl=" << m.deadline_ratio << " acc=" << m.average_accuracy
                  << " bw=" << m.bandwidth_tb << "\n";
      }
    }
  }
  return 0;
}
